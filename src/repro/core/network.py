"""Full-precision reference implementation of EMSTDP.

This is the "Python (FP)" baseline of Table I: the same two-phase, spike
domain algorithm as the chip implementation, but with float weights and no
hardware resource constraints.  Two dynamics backends are provided:

``rate``
    Solves each phase's steady state directly on the ``1/T`` rate grid.
    Phase 2 is a closed loop (error spikes perturb the forward rates, which
    changes the error), solved by fixed-point iteration.  This is the fast
    backend used for the long Table I / Fig. 4 runs.

``spike``
    Simulates all ``2*T`` timesteps with explicit integrate-and-fire neurons,
    two-channel error populations, gated error output and per-step
    corrections — the ground truth the rate backend is validated against
    (see ``tests/test_network_equivalence.py``).

The paper trains strictly online (batch size 1, Section IV-A) and
:meth:`EMSTDPNetwork.train_sample` / :meth:`EMSTDPNetwork.train_stream`
reproduce exactly that.  On top of it sits a *batched engine* —
:meth:`EMSTDPNetwork.fit_batch`, :meth:`EMSTDPNetwork.predict_batch` and
:meth:`EMSTDPNetwork.evaluate_batch` — that runs a whole minibatch through
one set of NumPy array ops for both backends.  ``fit_batch`` offers two
update modes:

``update_mode="online"``
    Bit-identical to the sequential per-sample loop: each sample's two-phase
    presentation sees the weights already updated by every earlier sample.
    The weight-update chain is a true data dependency, so this mode
    vectorizes *within* a sample (across neurons and timesteps) but walks
    the batch in order — it is the validated ground truth.

``update_mode="minibatch"``
    Fully vectorized across the batch: one batched two-phase pass with
    frozen weights, per-sample Eq. (7) deltas reduced to their mean
    (classic minibatch SGD) and applied in a single projected write-back.
    This breaks the online dependency chain — a deliberate, documented
    approximation — and is the fast path measured in
    ``benchmarks/bench_batched_throughput.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import EMSTDPConfig, validate_dims
from .encoding import (as_sample_batch, bias_encode, encode_label,
                       encode_labels, quantize_to_bins)
from .feedback import make_dfa_weights, make_fa_weights
from .learning import WeightUpdater
from .loss import predict_class, predict_classes, signed_error_rates
from .neuron import IFLayer, SignedErrorLayer, quantize_rate, rate_activation


class EMSTDPNetwork:
    """A multilayer SNN trained online with EMSTDP.

    Parameters
    ----------
    dims:
        Layer sizes ``(n_in, n_h1, ..., n_out)``.
    config:
        Algorithm hyper-parameters; see :class:`repro.core.EMSTDPConfig`.
    rng:
        Optional generator; defaults to one seeded from ``config.seed``.
    """

    def __init__(self, dims: Sequence[int], config: Optional[EMSTDPConfig] = None,
                 rng: Optional[np.random.Generator] = None):
        self.dims = validate_dims(dims)
        self.config = config if config is not None else EMSTDPConfig()
        self.rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self.n_layers = len(self.dims) - 1
        self.n_classes = self.dims[-1]
        self._bias = 1 if self.config.use_bias_neuron else 0

        self.updater = WeightUpdater(
            eta=self.config.learning_rate,
            weight_bits=self.config.weight_bits,
            weight_clip=self.config.weight_clip,
            stochastic_rounding=self.config.stochastic_rounding,
            rng=self.rng,
        )
        self.weights: List[np.ndarray] = []
        for i in range(self.n_layers):
            fan_in = self.dims[i] + self._bias
            limit = self.config.init_scale * np.sqrt(6.0 / fan_in)
            w = self.rng.uniform(-limit, limit, size=(fan_in, self.dims[i + 1]))
            self.weights.append(self.updater.project(w))

        if self.config.feedback == "fa":
            self.feedback_weights = make_fa_weights(
                self.dims, self.rng, self.config.feedback_scale)
        else:
            self.feedback_weights = make_dfa_weights(
                self.dims, self.rng, self.config.feedback_scale)

        # Masked output classes are "disabled classifier neurons" used by the
        # incremental-learning protocol: they neither fire nor receive error.
        self.class_mask = np.ones(self.n_classes, dtype=bool)

        self.samples_seen = 0

    # ------------------------------------------------------------------
    # Forward path
    # ------------------------------------------------------------------

    def _augment(self, rates: np.ndarray) -> np.ndarray:
        """Append the always-on bias unit's rate if enabled."""
        if not self._bias:
            return rates
        return np.concatenate([rates, [1.0]])

    def forward_rates(self, x: np.ndarray,
                      corrections: Optional[List[np.ndarray]] = None,
                      current_corrections: Optional[List[np.ndarray]] = None,
                      ) -> List[np.ndarray]:
        """Steady-state rates of every layer given input ``x`` in [0, 1].

        ``corrections[i]`` (signed spike rates) are added *after* the IF
        quantization of layer ``i+1`` — the effect of one-to-one error spikes
        carrying a full threshold's worth of charge.  ``current_corrections``
        are added to the membrane drive *before* quantization — the effect of
        DFA's random-weight error broadcast.
        """
        T = self.config.T
        rates = [quantize_to_bins(np.asarray(x, dtype=float), T)]
        for i, w in enumerate(self.weights):
            drive = self._augment(rates[i]) @ w
            if current_corrections is not None and current_corrections[i] is not None:
                drive = drive + current_corrections[i]
            r = rate_activation(drive, T)
            if corrections is not None and corrections[i] is not None:
                r = quantize_rate(np.clip(r + corrections[i], 0.0, 1.0), T)
            if i == self.n_layers - 1:
                r = r * self.class_mask
            rates.append(r)
        return rates

    def predict(self, x: np.ndarray) -> int:
        """Class decision from a phase-1 inference pass."""
        return predict_class(self.output_rates(x))

    def output_rates(self, x: np.ndarray) -> np.ndarray:
        """Output-layer rates from a phase-1 inference pass."""
        if self.config.dynamics == "spike":
            h, _ = self._spike_phase1(np.asarray(x, dtype=float))
            return h[-1]
        return self.forward_rates(x)[-1]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train_sample(self, x: np.ndarray, label: int,
                     lr_scale: float = 1.0) -> Dict[str, object]:
        """One full 2-phase EMSTDP presentation with a weight update.

        Returns a diagnostics dict with phase-1 rates ``h``, phase-2 rates
        ``h_hat``, the prediction and whether it was correct.
        """
        x = np.asarray(x, dtype=float)
        if self.config.dynamics == "spike":
            h, h_hat = self._spike_two_phase(x, label)
        else:
            h, h_hat = self._rate_two_phase(x, label)
        self._apply_updates(h, h_hat, lr_scale)
        self.samples_seen += 1
        pred = predict_class(h[-1])
        return {
            "h": h,
            "h_hat": h_hat,
            "prediction": pred,
            "correct": pred == label,
        }

    def _apply_updates(self, h: List[np.ndarray], h_hat: List[np.ndarray],
                       lr_scale: float) -> None:
        eta0 = self.updater.eta
        self.updater.eta = eta0 * lr_scale
        try:
            for i in range(self.n_layers):
                pre = self._augment(h[i])
                self.weights[i] = self.updater.apply(
                    self.weights[i], h_hat[i + 1], h[i + 1], pre)
        finally:
            self.updater.eta = eta0

    # -- rate backend ---------------------------------------------------

    def _rate_two_phase(self, x: np.ndarray, label: int
                        ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        cfg = self.config
        T = cfg.T
        h = self.forward_rates(x)
        target = encode_label(label, self.n_classes) * self.class_mask

        # The forward-activity gates: a neuron that never fired in phase 1
        # keeps its error channel shut (surrogate derivative h' = 0).
        gates = [hi > 0 for hi in h]

        # Phase 2 is a closed loop: error spikes raise/lower the forward
        # rates, which in turn changes the error.  The spiking system settles
        # into a limit cycle whose *time average* is the self-consistent
        # solution; plain fixed-point iteration instead oscillates with
        # period 2 (error on / error off).  Damped iteration recovers the
        # time-averaged equilibrium, e.g. for one output neuron
        # ``e = g * (target - h) / (1 + g)``.
        h_hat = [hi.copy() for hi in h]
        damping = 0.5
        e_out = np.zeros(self.n_classes)
        corrections: List[Optional[np.ndarray]] = [None] * self.n_layers
        current: List[Optional[np.ndarray]] = [None] * self.n_layers
        for _ in range(cfg.phase2_iterations):
            e_pos, e_neg = signed_error_rates(target, h_hat[-1], cfg.error_gain, T)
            if cfg.gate_output:
                e_pos = e_pos * gates[-1]
                e_neg = e_neg * gates[-1]
            e_new = (e_pos - e_neg) * self.class_mask
            e_out = e_out + damping * (e_new - e_out)
            corrections[-1] = e_out
            if cfg.feedback == "fa":
                e_above = e_out
                for i in range(self.n_layers - 2, -1, -1):
                    eps = cfg.hidden_error_gain * (
                        e_above @ self.feedback_weights[i])
                    ep = quantize_rate(np.clip(eps, 0.0, 1.0), T)
                    en = quantize_rate(np.clip(-eps, 0.0, 1.0), T)
                    if cfg.gate_hidden:
                        ep = ep * gates[i + 1]
                        en = en * gates[i + 1]
                    prev = corrections[i] if corrections[i] is not None else 0.0
                    corrections[i] = prev + damping * ((ep - en) - prev)
                    e_above = corrections[i]
            else:
                # DFA: the output error broadcasts through fixed random D
                # into per-neuron correction *dendrites*.  Like the FA error
                # neurons, the dendrites are integrate-and-fire: corrections
                # below one threshold's worth of charge produce no spikes,
                # which filters the broadcast noise that raw current
                # injection would accumulate into weight drift.
                for i in range(self.n_layers - 1):
                    eps = cfg.hidden_error_gain * (
                        e_out @ self.feedback_weights[i])
                    ep = quantize_rate(np.clip(eps, 0.0, 1.0), T)
                    en = quantize_rate(np.clip(-eps, 0.0, 1.0), T)
                    if cfg.gate_hidden:
                        ep = ep * gates[i + 1]
                        en = en * gates[i + 1]
                    prev = corrections[i] if corrections[i] is not None else 0.0
                    corrections[i] = prev + damping * ((ep - en) - prev)
            h_hat = self.forward_rates(x, corrections=corrections,
                                       current_corrections=current)
        return h, h_hat

    # -- spike backend --------------------------------------------------

    def _make_layers(self) -> List[IFLayer]:
        return [IFLayer(n) for n in self.dims]

    def _spike_phase1(self, x: np.ndarray
                      ) -> Tuple[List[np.ndarray], List[IFLayer]]:
        T = self.config.T
        layers = self._make_layers()
        in_bias = bias_encode(x, T)
        spikes = [np.zeros(n) for n in self.dims]
        for _ in range(T):
            spikes[0] = layers[0].step(in_bias).astype(float)
            for i, w in enumerate(self.weights):
                drive = self._augment(spikes[i]) @ w
                spikes[i + 1] = layers[i + 1].step(drive).astype(float)
        h = [layer.spike_count / T for layer in layers]
        h[-1] = h[-1] * self.class_mask
        return h, layers

    def _spike_two_phase(self, x: np.ndarray, label: int
                         ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        cfg = self.config
        T = cfg.T
        h, layers = self._spike_phase1(x)
        gates = [layer.spike_count > 0 for layer in layers]

        # Phase 2: counters restart, membrane potentials persist (the chip
        # resets state only at the end of the sample, Operation Flow 1).
        for layer in layers:
            layer.reset_counts()
        in_bias = bias_encode(x, T)
        target = encode_label(label, self.n_classes) * self.class_mask
        label_layer = IFLayer(self.n_classes)
        out_err = SignedErrorLayer(self.n_classes)
        # FA: chained error relay pairs.  DFA: correction dendrite pairs fed
        # straight from the output error — same IF threshold filtering,
        # different feedback topology.
        hidden_err = [SignedErrorLayer(n) for n in self.dims[1:-1]]

        spikes = [np.zeros(n) for n in self.dims]
        # Signed error spikes from the previous step, delivered this step.
        pending_out = np.zeros(self.n_classes)
        pending_hidden = [np.zeros(n) for n in self.dims[1:-1]]

        for _ in range(T):
            corrections: List[Optional[np.ndarray]] = [None] * self.n_layers
            corrections[-1] = pending_out * self.class_mask
            for i in range(self.n_layers - 1):
                corrections[i] = pending_hidden[i]

            spikes[0] = layers[0].step(in_bias).astype(float)
            for i, w in enumerate(self.weights):
                drive = self._augment(spikes[i]) @ w
                if corrections[i] is not None:
                    drive = drive + corrections[i]
                spikes[i + 1] = layers[i + 1].step(drive).astype(float)
            spikes[-1] = spikes[-1] * self.class_mask

            tgt_spikes = label_layer.step(target).astype(float)
            out_gate = gates[-1] if cfg.gate_output else None
            pending_out = out_err.step(
                cfg.error_gain * (tgt_spikes - spikes[-1]), gate=out_gate)
            pending_out = pending_out * self.class_mask

            if cfg.feedback == "fa":
                e_above = pending_out
                for i in range(self.n_layers - 2, -1, -1):
                    drive = cfg.hidden_error_gain * (
                        e_above @ self.feedback_weights[i])
                    gate = gates[i + 1] if cfg.gate_hidden else None
                    pending_hidden[i] = hidden_err[i].step(drive, gate=gate)
                    e_above = pending_hidden[i]
            else:
                for i in range(self.n_layers - 1):
                    drive = cfg.hidden_error_gain * (
                        pending_out @ self.feedback_weights[i])
                    gate = gates[i + 1] if cfg.gate_hidden else None
                    pending_hidden[i] = hidden_err[i].step(drive, gate=gate)

        h_hat = [layer.spike_count / T for layer in layers]
        h_hat[-1] = h_hat[-1] * self.class_mask
        return h, h_hat

    # ------------------------------------------------------------------
    # Batched engine
    # ------------------------------------------------------------------

    def _as_batch(self, X) -> np.ndarray:
        """Coerce input to a ``(B, n_in)`` float block (1-D becomes B=1)."""
        return as_sample_batch(X, self.dims[0])

    def _augment_batch(self, rates: np.ndarray) -> np.ndarray:
        """Batched :meth:`_augment`: append an always-on bias column."""
        if not self._bias:
            return rates
        return np.concatenate([rates, np.ones((rates.shape[0], 1))], axis=1)

    def forward_rates_batch(self, X: np.ndarray,
                            corrections: Optional[List[np.ndarray]] = None,
                            current_corrections: Optional[List[np.ndarray]] = None,
                            ) -> List[np.ndarray]:
        """Batched :meth:`forward_rates`: ``(B, n_in)`` in, ``(B, n_i)`` out.

        Row ``b`` of every returned layer equals ``forward_rates(X[b])`` —
        the dynamics are elementwise on the ``1/T`` grid, so stacking
        samples on a leading axis changes nothing but the matmul shape.
        ``corrections`` / ``current_corrections`` carry the same leading
        batch dimension when given.
        """
        T = self.config.T
        rates = [quantize_to_bins(self._as_batch(X), T)]
        for i, w in enumerate(self.weights):
            drive = self._augment_batch(rates[i]) @ w
            if current_corrections is not None and current_corrections[i] is not None:
                drive = drive + current_corrections[i]
            r = rate_activation(drive, T)
            if corrections is not None and corrections[i] is not None:
                r = quantize_rate(np.clip(r + corrections[i], 0.0, 1.0), T)
            if i == self.n_layers - 1:
                r = r * self.class_mask
            rates.append(r)
        return rates

    def output_rates_batch(self, X: np.ndarray) -> np.ndarray:
        """Batched phase-1 inference: ``(B, n_out)`` output rates."""
        X = self._as_batch(X)
        if self.config.dynamics == "spike":
            h, _ = self._spike_phase1_batch(X)
            return h[-1]
        return self.forward_rates_batch(X)[-1]

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Class decisions for a whole batch; equals ``[predict(x) for x in X]``."""
        return predict_classes(self.output_rates_batch(X))

    def evaluate_batch(self, samples, labels, batch_size: int = 256) -> float:
        """Phase-1 accuracy via the vectorized path, chunked to bound memory."""
        X = self._as_batch(samples)
        y = np.asarray(labels, dtype=np.int64).reshape(-1)
        if len(X) != len(y):
            raise ValueError("samples and labels must have equal length")
        correct = 0
        for lo in range(0, len(X), batch_size):
            preds = self.predict_batch(X[lo:lo + batch_size])
            correct += int(np.sum(preds == y[lo:lo + batch_size]))
        return correct / max(len(X), 1)

    def fit_batch(self, X: np.ndarray, labels, update_mode: str = "online",
                  lr_scale: float = 1.0) -> Dict[str, object]:
        """Train on a minibatch; returns per-sample predictions and accuracy.

        Parameters
        ----------
        X, labels:
            ``(B, n_in)`` samples and ``(B,)`` integer labels.
        update_mode:
            ``"online"`` applies each sample's update in order, with every
            presentation seeing the freshest weights — bit-identical to
            ``for x, y in zip(X, labels): train_sample(x, y)`` (the update
            chain is a data dependency, so the batch is walked
            sequentially).  ``"minibatch"`` runs one vectorized two-phase
            pass with frozen weights and applies the *mean* of the
            per-sample Eq. (7) deltas in a single projected write-back —
            the fast path (see the module docstring for the trade-off).
        lr_scale:
            Temporary learning-rate multiplier, as in :meth:`train_sample`.

        Returns
        -------
        dict with ``"predictions"`` (``(B,)`` int array, phase-1 decisions),
        ``"correct"`` (``(B,)`` bool array) and ``"accuracy"`` (float).
        """
        X = self._as_batch(X)
        y = np.asarray(labels, dtype=np.int64).reshape(-1)
        if len(X) != len(y):
            raise ValueError("samples and labels must have equal length")
        if update_mode not in ("online", "minibatch"):
            raise ValueError(
                f"update_mode must be 'online' or 'minibatch', got {update_mode!r}")
        if len(X) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return {"predictions": empty, "correct": empty.astype(bool),
                    "accuracy": 0.0}
        if update_mode == "online":
            preds = np.empty(len(X), dtype=np.int64)
            for b in range(len(X)):
                preds[b] = self.train_sample(X[b], int(y[b]),
                                             lr_scale=lr_scale)["prediction"]
        elif update_mode == "minibatch":
            if self.config.dynamics == "spike":
                h, h_hat = self._spike_two_phase_batch(X, y)
            else:
                h, h_hat = self._rate_two_phase_batch(X, y)
            self._apply_updates_batch(h, h_hat, lr_scale)
            self.samples_seen += len(X)
            preds = predict_classes(h[-1])
        correct = preds == y
        return {
            "predictions": preds,
            "correct": correct,
            "accuracy": float(np.mean(correct)) if len(X) else 0.0,
        }

    def _apply_updates_batch(self, h: List[np.ndarray], h_hat: List[np.ndarray],
                             lr_scale: float) -> None:
        """Minibatch write-back: mean of per-sample deltas, one projection."""
        eta0 = self.updater.eta
        self.updater.eta = eta0 * lr_scale
        try:
            for i in range(self.n_layers):
                pre = self._augment_batch(h[i])
                self.weights[i] = self.updater.apply_batch(
                    self.weights[i], h_hat[i + 1], h[i + 1], pre,
                    reduction="mean")
        finally:
            self.updater.eta = eta0

    def _rate_two_phase_batch(self, X: np.ndarray, labels: np.ndarray
                              ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Batched :meth:`_rate_two_phase` with frozen weights.

        A line-for-line port: every quantity gains a leading batch axis and
        the damped phase-2 fixed point settles all samples simultaneously.
        """
        cfg = self.config
        T = cfg.T
        B = X.shape[0]
        h = self.forward_rates_batch(X)
        target = encode_labels(labels, self.n_classes) * self.class_mask

        gates = [hi > 0 for hi in h]

        h_hat = [hi.copy() for hi in h]
        damping = 0.5
        e_out = np.zeros((B, self.n_classes))
        corrections: List[Optional[np.ndarray]] = [None] * self.n_layers
        current: List[Optional[np.ndarray]] = [None] * self.n_layers
        for _ in range(cfg.phase2_iterations):
            e_pos, e_neg = signed_error_rates(target, h_hat[-1], cfg.error_gain, T)
            if cfg.gate_output:
                e_pos = e_pos * gates[-1]
                e_neg = e_neg * gates[-1]
            e_new = (e_pos - e_neg) * self.class_mask
            e_out = e_out + damping * (e_new - e_out)
            corrections[-1] = e_out
            if cfg.feedback == "fa":
                e_above = e_out
                for i in range(self.n_layers - 2, -1, -1):
                    eps = cfg.hidden_error_gain * (
                        e_above @ self.feedback_weights[i])
                    ep = quantize_rate(np.clip(eps, 0.0, 1.0), T)
                    en = quantize_rate(np.clip(-eps, 0.0, 1.0), T)
                    if cfg.gate_hidden:
                        ep = ep * gates[i + 1]
                        en = en * gates[i + 1]
                    prev = corrections[i] if corrections[i] is not None else 0.0
                    corrections[i] = prev + damping * ((ep - en) - prev)
                    e_above = corrections[i]
            else:
                for i in range(self.n_layers - 1):
                    eps = cfg.hidden_error_gain * (
                        e_out @ self.feedback_weights[i])
                    ep = quantize_rate(np.clip(eps, 0.0, 1.0), T)
                    en = quantize_rate(np.clip(-eps, 0.0, 1.0), T)
                    if cfg.gate_hidden:
                        ep = ep * gates[i + 1]
                        en = en * gates[i + 1]
                    prev = corrections[i] if corrections[i] is not None else 0.0
                    corrections[i] = prev + damping * ((ep - en) - prev)
            h_hat = self.forward_rates_batch(X, corrections=corrections,
                                             current_corrections=current)
        return h, h_hat

    def _make_layers_batch(self, B: int) -> List[IFLayer]:
        return [IFLayer(n, batch_size=B) for n in self.dims]

    def _spike_phase1_batch(self, X: np.ndarray
                            ) -> Tuple[List[np.ndarray], List[IFLayer]]:
        """Batched :meth:`_spike_phase1`: all samples step in lockstep."""
        T = self.config.T
        B = X.shape[0]
        layers = self._make_layers_batch(B)
        in_bias = bias_encode(X, T)
        spikes = [np.zeros((B, n)) for n in self.dims]
        for _ in range(T):
            spikes[0] = layers[0].step(in_bias).astype(float)
            for i, w in enumerate(self.weights):
                drive = self._augment_batch(spikes[i]) @ w
                spikes[i + 1] = layers[i + 1].step(drive).astype(float)
        h = [layer.spike_count / T for layer in layers]
        h[-1] = h[-1] * self.class_mask
        return h, layers

    def _spike_two_phase_batch(self, X: np.ndarray, labels: np.ndarray
                               ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Batched :meth:`_spike_two_phase` with frozen weights."""
        cfg = self.config
        T = cfg.T
        B = X.shape[0]
        h, layers = self._spike_phase1_batch(X)
        gates = [layer.spike_count > 0 for layer in layers]

        for layer in layers:
            layer.reset_counts()
        in_bias = bias_encode(X, T)
        target = encode_labels(labels, self.n_classes) * self.class_mask
        label_layer = IFLayer(self.n_classes, batch_size=B)
        out_err = SignedErrorLayer(self.n_classes, batch_size=B)
        hidden_err = [SignedErrorLayer(n, batch_size=B)
                      for n in self.dims[1:-1]]

        spikes = [np.zeros((B, n)) for n in self.dims]
        pending_out = np.zeros((B, self.n_classes))
        pending_hidden = [np.zeros((B, n)) for n in self.dims[1:-1]]

        for _ in range(T):
            corrections: List[Optional[np.ndarray]] = [None] * self.n_layers
            corrections[-1] = pending_out * self.class_mask
            for i in range(self.n_layers - 1):
                corrections[i] = pending_hidden[i]

            spikes[0] = layers[0].step(in_bias).astype(float)
            for i, w in enumerate(self.weights):
                drive = self._augment_batch(spikes[i]) @ w
                if corrections[i] is not None:
                    drive = drive + corrections[i]
                spikes[i + 1] = layers[i + 1].step(drive).astype(float)
            spikes[-1] = spikes[-1] * self.class_mask

            tgt_spikes = label_layer.step(target).astype(float)
            out_gate = gates[-1] if cfg.gate_output else None
            pending_out = out_err.step(
                cfg.error_gain * (tgt_spikes - spikes[-1]), gate=out_gate)
            pending_out = pending_out * self.class_mask

            if cfg.feedback == "fa":
                e_above = pending_out
                for i in range(self.n_layers - 2, -1, -1):
                    drive = cfg.hidden_error_gain * (
                        e_above @ self.feedback_weights[i])
                    gate = gates[i + 1] if cfg.gate_hidden else None
                    pending_hidden[i] = hidden_err[i].step(drive, gate=gate)
                    e_above = pending_hidden[i]
            else:
                for i in range(self.n_layers - 1):
                    drive = cfg.hidden_error_gain * (
                        pending_out @ self.feedback_weights[i])
                    gate = gates[i + 1] if cfg.gate_hidden else None
                    pending_hidden[i] = hidden_err[i].step(drive, gate=gate)

        h_hat = [layer.spike_count / T for layer in layers]
        h_hat[-1] = h_hat[-1] * self.class_mask
        return h, h_hat

    # ------------------------------------------------------------------
    # Convenience training / evaluation loops
    # ------------------------------------------------------------------

    def train_stream(self, samples, labels, lr_scale: float = 1.0,
                     progress: Optional[callable] = None) -> float:
        """Single online pass over a stream; returns running accuracy."""
        correct = 0
        total = 0
        for x, y in zip(samples, labels):
            result = self.train_sample(x, int(y), lr_scale=lr_scale)
            correct += int(result["correct"])
            total += 1
            if progress is not None:
                progress(total, correct / total)
        return correct / max(total, 1)

    def evaluate(self, samples, labels) -> float:
        """Phase-1 (inference-only) accuracy over a test set."""
        correct = 0
        total = 0
        for x, y in zip(samples, labels):
            correct += int(self.predict(x) == int(y))
            total += 1
        return correct / max(total, 1)

    # ------------------------------------------------------------------
    # Checkpointing / incremental-learning hooks
    # ------------------------------------------------------------------

    def set_class_mask(self, active_classes: Sequence[int]) -> None:
        """Enable only ``active_classes`` output neurons (IOL step 1)."""
        mask = np.zeros(self.n_classes, dtype=bool)
        mask[list(active_classes)] = True
        if not mask.any():
            raise ValueError("at least one class must stay active")
        self.class_mask = mask

    def clear_class_mask(self) -> None:
        """Re-enable every output neuron."""
        self.class_mask = np.ones(self.n_classes, dtype=bool)

    def state_dict(self) -> Dict[str, object]:
        """Snapshot of everything needed to restore the model.

        The hyper-parameter config rides along so a checkpoint is
        self-describing: :class:`repro.serve.ModelRegistry` rebuilds the
        exact network (phase length, feedback mode, bias neuron, ...) from
        the checkpoint alone.  ``load_state_dict`` ignores the entry — the
        target object keeps its own config.
        """
        import dataclasses

        return {
            "dims": self.dims,
            "config": dataclasses.asdict(self.config),
            "weights": [w.copy() for w in self.weights],
            "feedback_weights": [b.copy() for b in self.feedback_weights],
            "class_mask": self.class_mask.copy(),
            "samples_seen": self.samples_seen,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        if tuple(state["dims"]) != self.dims:
            raise ValueError(
                f"checkpoint dims {state['dims']} != network dims {self.dims}")
        self.weights = [np.array(w, dtype=float) for w in state["weights"]]
        self.feedback_weights = [np.array(b, dtype=float)
                                 for b in state["feedback_weights"]]
        self.class_mask = np.array(state["class_mask"], dtype=bool)
        self.samples_seen = int(state["samples_seen"])
