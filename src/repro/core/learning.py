"""The EMSTDP local weight-update rule in both its published forms.

Eq. (7) — the algorithmic form:

    dW = eta * (h_hat - h) (x) h_pre

Eq. (12) — the Loihi sum-of-products form, which only uses quantities that
exist at the *end of phase 2* (the pre-trace, the post-trace and the tag):

    dW = 2*eta * h_hat (x) pre  -  eta * Z (x) pre,    Z = h_hat + h

The two are algebraically identical when ``pre`` equals the phase-1
presynaptic count; on the chip ``pre`` is the phase-2 pre-trace (which counts
``h_hat_pre`` instead of ``h_pre``), an approximation this module lets you
measure (see ``tests/test_learning.py`` and the trace ablation bench).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import kernels
from ..seeding import as_rng
from .quantize import quantize_weights


def delta_w_reference(h_hat_post: np.ndarray, h_post: np.ndarray,
                      h_pre: np.ndarray, eta: float) -> np.ndarray:
    """Eq. (7): ``dW[i, j] = eta * (h_hat[j] - h[j]) * h_pre[i]``.

    All rates normalized to [0, 1]; the result has shape
    ``(len(h_pre), len(h_post))`` matching the forward weight layout
    ``potential = rates_pre @ W``.
    """
    return kernels.delta_w(np.asarray(h_hat_post, dtype=float),
                           np.asarray(h_post, dtype=float),
                           np.asarray(h_pre, dtype=float), eta)


def delta_w_reference_batch(h_hat_post: np.ndarray, h_post: np.ndarray,
                            h_pre: np.ndarray, eta: float,
                            reduction: str = "mean") -> np.ndarray:
    """Batched Eq. (7): the per-sample outer products reduced in one pass.

    ``h_hat_post`` and ``h_post`` are ``(B, n_post)``, ``h_pre`` is
    ``(B, n_pre)``.  The per-sample deltas ``eta * (h_hat_b - h_b) (x)
    pre_b`` are reduced over the batch — ``"mean"`` (minibatch SGD
    semantics) or ``"sum"`` (equivalent to applying every per-sample delta
    against the same frozen weights).  Returns ``(n_pre, n_post)``.

    The reduction accumulates in batch order (sample 0 first) — a defined
    order is part of the kernel contract so the compiled backends can be
    pinned bit-identical to the NumPy reference; a BLAS GEMM's blocked
    summation order could not be reproduced by a plain loop.
    """
    if reduction not in ("mean", "sum"):
        raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
    h_hat = np.asarray(h_hat_post, dtype=float)
    h = np.asarray(h_post, dtype=float)
    pre = np.asarray(h_pre, dtype=float)
    if h_hat.ndim != 2 or pre.ndim != 2 or h_hat.shape[0] != pre.shape[0]:
        raise ValueError(
            f"expected (B, n_post) and (B, n_pre) stacks, got {h_hat.shape} "
            f"and {pre.shape}")
    if h_hat.shape[0] == 0:
        # The mean of zero per-sample deltas is undefined (0/0 would NaN
        # the weights); callers must skip the update for an empty batch.
        raise ValueError("cannot reduce an empty batch")
    return kernels.delta_w_batch(h_hat, h, pre, eta,
                                 mean=(reduction == "mean"))


def delta_w_loihi_form(h_hat_post: np.ndarray, z_post: np.ndarray,
                       pre_trace: np.ndarray, eta: float) -> np.ndarray:
    """Eq. (12): ``dW = 2*eta * h_hat (x) pre - eta * Z (x) pre``.

    ``z_post`` is the tag variable ``Z = h_hat + h`` accumulated over both
    phases; ``pre_trace`` is whatever the presynaptic trace holds at the end
    of phase 2.
    """
    return kernels.delta_w_loihi(np.asarray(h_hat_post, dtype=float),
                                 np.asarray(z_post, dtype=float),
                                 np.asarray(pre_trace, dtype=float), eta)


class WeightUpdater:
    """Applies EMSTDP updates with optional quantization-aware rounding.

    The updater owns the RNG used for stochastic rounding so repeated runs
    with the same seed are bit-identical.
    """

    def __init__(self, eta: float, weight_bits: Optional[int] = None,
                 weight_clip: Optional[float] = None,
                 stochastic_rounding: bool = True,
                 rng: Optional[np.random.Generator] = None):
        if eta <= 0:
            raise ValueError("eta must be positive")
        self.eta = float(eta)
        self.weight_bits = weight_bits
        self.weight_clip = weight_clip
        self.stochastic_rounding = bool(stochastic_rounding)
        self.rng = as_rng(rng)

    def apply(self, w: np.ndarray, h_hat_post: np.ndarray, h_post: np.ndarray,
              h_pre: np.ndarray) -> np.ndarray:
        """Return updated (and re-quantized) weights per Eq. (7)."""
        dw = delta_w_reference(h_hat_post, h_post, h_pre, self.eta)
        return self.project(w + dw)

    def apply_batch(self, w: np.ndarray, h_hat_post: np.ndarray,
                    h_post: np.ndarray, h_pre: np.ndarray,
                    reduction: str = "mean") -> np.ndarray:
        """One projected update from a whole minibatch of rate stacks.

        Unlike looping :meth:`apply` over the batch, the quantization
        projection runs once on the summed/averaged delta — this is the
        ``update_mode="minibatch"`` semantics of the batched engine, where
        a single hardware write-back applies the reduced update.
        """
        dw = delta_w_reference_batch(h_hat_post, h_post, h_pre, self.eta,
                                     reduction=reduction)
        return self.project(w + dw)

    def apply_loihi_form(self, w: np.ndarray, h_hat_post: np.ndarray,
                         z_post: np.ndarray, pre_trace: np.ndarray) -> np.ndarray:
        """Return updated weights per the sum-of-products form, Eq. (12)."""
        dw = delta_w_loihi_form(h_hat_post, z_post, pre_trace, self.eta)
        return self.project(w + dw)

    def project(self, w: np.ndarray) -> np.ndarray:
        """Clip/quantize weights onto the representable grid."""
        return quantize_weights(w, self.weight_bits, self.weight_clip,
                                rng=self.rng, stochastic=self.stochastic_rounding)
