"""EMSTDP: spike-based backpropagation with local update rules.

Public API of the algorithmic core — the full-precision reference that the
on-chip implementation in :mod:`repro.onchip` is validated against.
"""

from .config import (EMSTDPConfig, full_precision_config,
                     loihi_default_config, validate_dims)
from .encoding import (as_sample_batch, bias_encode, bias_io_events,
                       encode_label, encode_labels, quantize_to_bins,
                       rate_encode_spikes, spike_train_io_events)
from .feedback import (feedback_neuron_count, feedback_synapse_count,
                       make_dfa_weights, make_fa_weights)
from .learning import (WeightUpdater, delta_w_loihi_form, delta_w_reference,
                       delta_w_reference_batch)
from .loss import (l2_rate_loss, margin, predict_class, predict_classes,
                   signed_error_rates)
from .network import EMSTDPNetwork
from .neuron import IFLayer, SignedErrorLayer, quantize_rate, rate_activation
from .quantize import (from_fixed_point, quant_step, quantization_snr_db,
                       quantize_weights, to_fixed_point)

__all__ = [
    "EMSTDPConfig", "EMSTDPNetwork", "IFLayer", "SignedErrorLayer",
    "as_sample_batch",
    "WeightUpdater", "bias_encode", "bias_io_events", "delta_w_loihi_form",
    "delta_w_reference", "delta_w_reference_batch", "encode_label",
    "encode_labels", "feedback_neuron_count",
    "feedback_synapse_count", "from_fixed_point", "full_precision_config",
    "l2_rate_loss", "loihi_default_config", "make_dfa_weights",
    "make_fa_weights", "margin", "predict_class", "predict_classes",
    "quant_step",
    "quantization_snr_db", "quantize_rate", "quantize_to_bins",
    "quantize_weights", "rate_activation", "rate_encode_spikes",
    "signed_error_rates", "spike_train_io_events", "to_fixed_point",
    "validate_dims",
]
