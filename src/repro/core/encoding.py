"""Input and label encodings.

The paper's key I/O optimisation (Section III-D) is to program the *bias* of
the input-layer neurons with the real-valued input instead of streaming
rate-coded spikes from the host: an IF neuron with constant bias ``i``
integrates ``i`` per step and fires at rate ``floor(i*T/theta)/T``, linearly
proportional to the input, at the cost of a single host→chip write per
sample.  Both encodings are implemented here so their I/O cost and accuracy
can be compared (see ``benchmarks/bench_ablation_input_encoding.py``).
"""

from __future__ import annotations

import numpy as np

from ..seeding import as_rng


def as_sample_batch(X, n_features: int) -> np.ndarray:
    """Coerce input to a ``(B, n_features)`` float block.

    A single 1-D sample becomes ``B = 1``; any empty input (e.g. ``[]``)
    becomes ``B = 0`` rather than a bogus ``(1, 0)`` block.  The one
    input-coercion rule for every batch API in the repo (the reference
    network, the on-chip trainer, the backprop baseline).
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        if X.size == 0:
            return X.reshape(0, n_features)
        X = X[None, :]
    if X.ndim != 2 or X.shape[1] != n_features:
        raise ValueError(
            f"expected samples of shape (B, {n_features}), got {X.shape}")
    return X


def quantize_to_bins(x: np.ndarray, T: int) -> np.ndarray:
    """Quantize real inputs in [0, 1] to the ``T``-level grid of one phase.

    This is the "Quantize x to T bins" step of Operation Flow 1: with a phase
    of ``T`` steps a neuron can only express ``T + 1`` distinct rates, so any
    finer input resolution is unrepresentable.
    """
    x = np.asarray(x, dtype=float)
    if T < 1:
        raise ValueError("T must be >= 1")
    return np.clip(np.round(x * T), 0, T) / T


def bias_encode(x: np.ndarray, T: int) -> np.ndarray:
    """Return the per-step bias drive realizing rate ``quantize_to_bins(x)``.

    In normalized units (threshold 1) the bias equals the desired rate, so
    the encoding is the quantized input itself.  Kept as its own function so
    the on-chip implementation, where bias is an integer mantissa/exponent
    pair, has a single place to translate.
    """
    return quantize_to_bins(x, T)


def rate_encode_spikes(x: np.ndarray, T: int, rng: np.random.Generator = None,
                       deterministic: bool = True) -> np.ndarray:
    """Expand inputs into an explicit ``(T, n)`` spike train.

    ``deterministic`` uses evenly spaced spikes (what an IF neuron with a
    constant bias produces); otherwise each step is an independent Bernoulli
    draw with probability ``x`` (classic Poisson-style rate coding).  The
    deterministic train of ``rate_encode_spikes(x, T)`` sums to exactly
    ``round(x*T)`` spikes.
    """
    x = np.asarray(x, dtype=float)
    q = quantize_to_bins(x, T)
    if deterministic:
        # An IF neuron with constant drive q spikes at steps where the
        # accumulated potential crosses an integer: cumsum crossing pattern.
        steps = np.arange(1, T + 1)[:, None]
        acc = steps * q[None, :] + 1e-9
        train = np.floor(acc) - np.floor(acc - q[None, :])
        return (train > 0).astype(np.int8)
    rng = as_rng(rng)
    return (rng.random((T, x.size)) < q[None, :]).astype(np.int8)


def spike_train_io_events(x: np.ndarray, T: int) -> int:
    """Host→chip events needed to stream ``x`` as an explicit spike train."""
    q = quantize_to_bins(np.asarray(x, dtype=float), T)
    return int(np.round(q * T).sum())


def bias_io_events(x: np.ndarray, T: int) -> int:
    """Host→chip events needed with bias programming: one write per neuron.

    The paper counts this as "communicate with the chip only once for every
    input sample"; per-neuron bias words are written in that single
    transaction.
    """
    return int(np.asarray(x).size)


def encode_label(label: int, n_classes: int, rate: float = 1.0) -> np.ndarray:
    """One-hot target rate vector: the true class fires at ``rate``.

    The label is inserted as a bias on the label neurons (Operation Flow 1),
    so the target spike train ``h_hat`` of Eq. (6) is simply a neuron firing
    at the maximum rate for the true class and silent neurons elsewhere.
    """
    if not 0 <= label < n_classes:
        raise ValueError(f"label {label} out of range for {n_classes} classes")
    if not 0.0 < rate <= 1.0:
        raise ValueError("target rate must be in (0, 1]")
    target = np.zeros(n_classes)
    target[label] = rate
    return target


def encode_labels(labels: np.ndarray, n_classes: int,
                  rate: float = 1.0) -> np.ndarray:
    """Batched :func:`encode_label`: ``(B,)`` labels -> ``(B, n_classes)``.

    Row ``b`` equals ``encode_label(labels[b], n_classes, rate)``; the whole
    one-hot target block is built in one indexed write so the batched
    engine pays no per-sample Python cost.
    """
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        bad = labels[(labels < 0) | (labels >= n_classes)][0]
        raise ValueError(f"label {bad} out of range for {n_classes} classes")
    if not 0.0 < rate <= 1.0:
        raise ValueError("target rate must be in (0, 1]")
    targets = np.zeros((labels.size, n_classes))
    targets[np.arange(labels.size), labels] = rate
    return targets
