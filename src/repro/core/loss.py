"""Spike-based L2 loss (Eq. 6) and signed error rates.

The loss layer of EMSTDP is itself spiking: the first feedback-path layer
integrates the target spike train with weight ``+w_L`` and the predicted
spike train with weight ``-w_L`` (Eq. 6), so its accumulated potential is
proportional to ``h_hat - h`` — the derivative of the L2 loss between spike
counts.  The sign is carried by a positive and a negative channel.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .neuron import quantize_rate


def signed_error_rates(target: np.ndarray, predicted: np.ndarray, gain: float,
                       T: int) -> Tuple[np.ndarray, np.ndarray]:
    """Rates of the positive/negative output error channels over one phase.

    Each channel is an IF neuron with threshold 1 receiving per-step drive
    ``±gain * (target - predicted)``; over a phase its rate is the clipped,
    ``1/T``-quantized rectification of that drive (Eq. 2 applied to Eq. 6).
    """
    diff = gain * (np.asarray(target, dtype=float) - np.asarray(predicted, dtype=float))
    e_pos = quantize_rate(np.clip(diff, 0.0, 1.0), T)
    e_neg = quantize_rate(np.clip(-diff, 0.0, 1.0), T)
    return e_pos, e_neg


def l2_rate_loss(target: np.ndarray, predicted: np.ndarray) -> float:
    """Scalar L2 loss between target and predicted rates (diagnostics only)."""
    t = np.asarray(target, dtype=float)
    p = np.asarray(predicted, dtype=float)
    return float(0.5 * np.sum((t - p) ** 2))


def predict_class(rates: np.ndarray) -> int:
    """Winner-take-all readout: the class of the fastest-firing output neuron."""
    return int(np.argmax(np.asarray(rates)))


def predict_classes(rates: np.ndarray) -> np.ndarray:
    """Batched winner-take-all readout over ``(B, n_classes)`` rates.

    ``np.argmax`` breaks rate ties toward the lower class index, exactly as
    :func:`predict_class` does per sample, so the two readouts always agree.
    """
    return np.argmax(np.asarray(rates), axis=-1).astype(np.int64)


def margin(rates: np.ndarray, label: int) -> float:
    """Rate margin of the true class over the best rival (diagnostics)."""
    r = np.asarray(rates, dtype=float)
    rival = np.max(np.delete(r, label)) if r.size > 1 else 0.0
    return float(r[label] - rival)
