"""Fixed random feedback weights: feedback alignment (FA) and direct
feedback alignment (DFA).

Keeping the feedback path's weights equal to the transposed forward weights
would require synchronizing two constantly changing copies (Section II-A);
EMSTDP instead uses *fixed random* feedback matrices.  FA mirrors the layer
structure (error flows down one layer at a time), while DFA broadcasts the
output-layer error straight to every hidden layer, eliminating the hidden
error neurons and shrinking the feedback weight memory (Section III-A).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def make_fa_weights(dims: Sequence[int], rng: np.random.Generator,
                    scale: float = 1.0) -> List[np.ndarray]:
    """Random feedback matrices for FA.

    ``dims = (n_in, n_1, ..., n_L)``.  Returns ``B[i]`` of shape
    ``(dims[i+2], dims[i+1])`` mapping error spikes of layer ``i+2`` onto the
    error neurons of layer ``i+1``, for ``i = 0 .. L-2`` — i.e. one matrix
    per *hidden* layer, standing in for ``W^T`` in Eq. (5).

    Weights are uniform, zero-mean (the paper samples from a uniform
    distribution), with std ``scale / sqrt(fan_in)``.
    """
    dims = tuple(int(d) for d in dims)
    mats = []
    for i in range(len(dims) - 2):
        fan_in = dims[i + 2]
        limit = scale * np.sqrt(3.0 / fan_in)
        mats.append(rng.uniform(-limit, limit, size=(dims[i + 2], dims[i + 1])))
    return mats

def make_dfa_weights(dims: Sequence[int], rng: np.random.Generator,
                     scale: float = 1.0) -> List[np.ndarray]:
    """Random feedback matrices for DFA.

    Returns ``D[i]`` of shape ``(n_out, dims[i+1])`` connecting the output
    error neurons directly to hidden layer ``i+1``, for ``i = 0 .. L-2``.
    Because ``n_out`` is usually much smaller than the hidden widths these
    matrices are far smaller than FA's, which is where the paper's core/
    synapse savings come from.
    """
    dims = tuple(int(d) for d in dims)
    n_out = dims[-1]
    mats = []
    for i in range(len(dims) - 2):
        limit = scale * np.sqrt(3.0 / n_out)
        mats.append(rng.uniform(-limit, limit, size=(n_out, dims[i + 1])))
    return mats


def feedback_synapse_count(dims: Sequence[int], mode: str) -> int:
    """Number of feedback-path synapses for a given wiring mode.

    Used by the resource accounting behind Fig. 3: DFA needs
    ``n_out * sum(hidden)`` synapses versus FA's chained
    ``sum(n_{i+1} * n_i)`` plus the one-to-one correction links.
    """
    dims = tuple(int(d) for d in dims)
    hidden = dims[1:-1]
    n_out = dims[-1]
    if mode == "dfa":
        return int(n_out * sum(hidden)) + 2 * n_out  # + output correction pairs
    if mode == "fa":
        chain = sum(dims[i + 2] * dims[i + 1] for i in range(len(dims) - 2))
        one_to_one = 2 * sum(hidden) + 2 * n_out
        return int(chain + one_to_one)
    raise ValueError(f"unknown feedback mode {mode!r}")


def feedback_neuron_count(dims: Sequence[int], mode: str) -> int:
    """Number of dedicated error neurons (per signed channel pair).

    FA keeps a positive+negative error neuron per forward neuron in every
    trainable layer; DFA only needs them at the output.
    """
    dims = tuple(int(d) for d in dims)
    n_out = dims[-1]
    if mode == "dfa":
        return 2 * n_out
    if mode == "fa":
        return 2 * (sum(dims[1:-1]) + n_out)
    raise ValueError(f"unknown feedback mode {mode!r}")
