"""Weight quantization utilities.

Loihi stores synaptic weights as 8-bit signed integers (a mantissa plus a
shared exponent).  The reference implementation models this as a uniform
signed grid over ``[-clip, +clip]`` with ``2**bits`` levels, re-applied after
every weight update.  Stochastic rounding keeps tiny updates alive: an
update smaller than one grid step still moves the weight with probability
proportional to its size, so learning with ``eta = 2**-3`` on normalized
rates does not stall.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def quant_step(bits: int, clip: float) -> float:
    """Grid step of a signed ``bits``-bit uniform quantizer over [-clip, clip]."""
    if bits < 2:
        raise ValueError("bits must be >= 2")
    if clip <= 0:
        raise ValueError("clip must be positive")
    return clip / (2 ** (bits - 1) - 1)


def quantize_weights(w: np.ndarray, bits: Optional[int], clip: Optional[float],
                     rng: Optional[np.random.Generator] = None,
                     stochastic: bool = False) -> np.ndarray:
    """Project weights onto the quantization grid.

    With ``bits is None`` only clipping (if any) is applied — the full
    precision configuration.  With stochastic rounding, values are rounded up
    or down with probability proportional to their fractional position, which
    is unbiased: ``E[quantize(w)] = clip_to_range(w)``.
    """
    w = np.asarray(w, dtype=float)
    if clip is not None:
        w = np.clip(w, -clip, clip)
    if bits is None:
        return w
    if clip is None:
        raise ValueError("quantization requires a clip range")
    step = quant_step(bits, clip)
    scaled = w / step
    if stochastic:
        if rng is None:
            raise ValueError("stochastic rounding requires an rng")
        floor = np.floor(scaled)
        frac = scaled - floor
        scaled = floor + (rng.random(w.shape) < frac)
    else:
        scaled = np.round(scaled)
    levels = 2 ** (bits - 1) - 1
    return np.clip(scaled, -levels, levels) * step


def to_fixed_point(w: np.ndarray, bits: int, clip: float) -> np.ndarray:
    """Convert float weights to the signed integer mantissas a chip stores."""
    step = quant_step(bits, clip)
    levels = 2 ** (bits - 1) - 1
    return np.clip(np.round(np.asarray(w, dtype=float) / step), -levels, levels
                   ).astype(np.int32)


def from_fixed_point(mant: np.ndarray, bits: int, clip: float) -> np.ndarray:
    """Inverse of :func:`to_fixed_point`."""
    return np.asarray(mant, dtype=float) * quant_step(bits, clip)


def quantization_snr_db(w: np.ndarray, bits: int, clip: float) -> float:
    """Signal-to-quantization-noise ratio of representing ``w`` on the grid.

    A diagnostic used in the precision ablation: SNR grows ~6 dB per bit for
    well-scaled weights and collapses when ``clip`` is badly chosen.
    """
    w = np.asarray(w, dtype=float)
    q = quantize_weights(w, bits, clip)
    noise = np.mean((w - q) ** 2)
    signal = np.mean(w ** 2)
    if signal == 0:
        return float("-inf")
    if noise == 0:
        return float("inf")
    return float(10.0 * np.log10(signal / noise))
