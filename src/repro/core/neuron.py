"""Integrate-and-fire neuron primitives used by the reference implementation.

EMSTDP uses the same simple IF neuron in the forward and the feedback path
(Eq. 1 of the paper).  The membrane potential accumulates the weighted input
every timestep; when it crosses the threshold the neuron emits a spike and
the threshold is subtracted ("soft reset"), which makes the spike count over
a window of ``T`` steps equal to ``floor(u / theta)`` where ``u`` is the
total accumulated drive (Eq. 2) — the rate activation the algorithm is built
on.
"""

from __future__ import annotations

import numpy as np

from . import kernels


class IFLayer:
    """A vectorized layer of integrate-and-fire neurons.

    All potentials are expressed in *normalized* units where the firing
    threshold is 1.0 and a constant drive of ``r`` per step produces a spike
    rate of ``r`` (for ``0 <= r <= 1``).

    Parameters
    ----------
    n:
        Number of neurons.
    threshold:
        Firing threshold (normalized units).
    soft_reset:
        If ``True`` (default) the threshold is subtracted on spike, which
        realises the ``floor(u/theta)`` rate activation of Eq. (2).  If
        ``False`` the potential is reset to zero, losing the residual charge.
    refractory:
        Number of steps a neuron stays silent after a spike (0 = none).
    batch_size:
        ``None`` (default) keeps the classic single-sample layout with state
        of shape ``(n,)``.  An integer ``B`` gives every neuron ``B``
        independent copies of its state, shaped ``(B, n)``; :meth:`step`
        then takes and returns ``(B, n)`` arrays.  Each batch row evolves
        exactly as an unbatched layer fed that row would.
    """

    def __init__(self, n: int, threshold: float = 1.0, soft_reset: bool = True,
                 refractory: int = 0, batch_size: int = None):
        if n < 1:
            raise ValueError("layer must contain at least one neuron")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if refractory < 0:
            raise ValueError("refractory must be >= 0")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1 (or None for unbatched)")
        self.n = int(n)
        self.threshold = float(threshold)
        self.soft_reset = bool(soft_reset)
        self.refractory = int(refractory)
        self.batch_size = None if batch_size is None else int(batch_size)
        shape = (self.n,) if self.batch_size is None else (self.batch_size, self.n)
        self._state_shape = shape
        self.v = np.zeros(shape)
        self.spike_count = np.zeros(shape, dtype=np.int64)
        self._refrac_left = np.zeros(shape, dtype=np.int64)

    def reset(self) -> None:
        """Clear all state (membrane potential, counters, refractory)."""
        self.v.fill(0.0)
        self.spike_count.fill(0)
        self._refrac_left.fill(0)

    def reset_counts(self) -> None:
        """Clear only the spike counters (used at phase boundaries)."""
        self.spike_count.fill(0)

    def step(self, drive: np.ndarray) -> np.ndarray:
        """Advance one timestep with input ``drive`` (normalized units).

        Returns the boolean spike vector for this step.
        """
        drive = np.asarray(drive, dtype=float)
        if drive.shape != self._state_shape:
            raise ValueError(
                f"drive must have shape {self._state_shape}, got {drive.shape}")
        # Integrate, spike (with the epsilon margin that keeps grid-exact
        # drives from losing a spike to float accumulation error), soft/hard
        # reset, and floor at the resting potential: a negative membrane
        # would silently store "anti-spikes" that the rate activation
        # floor(u/theta) does not model.  The whole update runs in the
        # selected kernel backend, mutating v and the refractory counters
        # in place.
        spikes = kernels.if_step(self.v, self._refrac_left, drive,
                                 self.threshold, soft_reset=self.soft_reset,
                                 refractory=self.refractory)
        self.spike_count += spikes
        return spikes


class SignedErrorLayer:
    """A pair of IF populations representing a signed error in two channels.

    The feedback path cannot carry negative spike rates, so the paper uses a
    positive and a negative channel per error neuron (Section III-A,
    Eq. 10).  This helper owns both channels, integrates a *signed* drive and
    reports signed spike output ``(+1, -1, 0)`` per neuron.

    The channels can be gated by the forward-path activity (the
    multi-compartment AND gate): a gated channel integrates normally but
    produces no output spikes while the gate is closed.

    Like :class:`IFLayer`, the pair can carry a leading batch dimension:
    with ``batch_size=B`` both channels hold ``(B, n)`` state and
    :meth:`step` maps ``(B, n)`` signed drives (and gates) to ``(B, n)``
    signed spikes.
    """

    def __init__(self, n: int, threshold: float = 1.0, batch_size: int = None):
        self.n = int(n)
        self.batch_size = None if batch_size is None else int(batch_size)
        self.pos = IFLayer(n, threshold=threshold, batch_size=batch_size)
        self.neg = IFLayer(n, threshold=threshold, batch_size=batch_size)

    def reset(self) -> None:
        self.pos.reset()
        self.neg.reset()

    def step(self, signed_drive: np.ndarray, gate: np.ndarray = None,
             enabled: bool = True) -> np.ndarray:
        """Advance one step; return signed spikes in ``{-1, 0, +1}``.

        ``signed_drive`` feeds the positive channel as-is and the negative
        channel negated.  ``gate`` is a boolean per-neuron mask (the soma
        output is ANDed with it); ``enabled`` is a global phase gate.
        """
        signed_drive = np.asarray(signed_drive, dtype=float)
        sp = self.pos.step(signed_drive)
        sn = self.neg.step(-signed_drive)
        if not enabled:
            # The phase gate closes the soma: spikes are swallowed.  Counts
            # must not include swallowed spikes either.
            self.pos.spike_count -= sp
            self.neg.spike_count -= sn
            return np.zeros(self.pos._state_shape)
        if gate is not None:
            gate = np.asarray(gate, dtype=bool)
            self.pos.spike_count -= sp & ~gate
            self.neg.spike_count -= sn & ~gate
            sp = sp & gate
            sn = sn & gate
        return sp.astype(float) - sn.astype(float)

    @property
    def signed_count(self) -> np.ndarray:
        """Signed spike count: positive-channel minus negative-channel."""
        return self.pos.spike_count - self.neg.spike_count


def rate_activation(potential: np.ndarray, T: int) -> np.ndarray:
    """Closed-form IF rate on the ``1/T`` grid: ``floor(p*T)/T`` in [0, 1].

    ``potential`` is the per-step drive in normalized units (threshold = 1).
    This is Eq. (2) of the paper expressed in rates instead of counts.
    """
    p = np.asarray(potential, dtype=float)
    return np.clip(np.floor(p * T + 1e-9), 0, T) / T


def quantize_rate(rate: np.ndarray, T: int) -> np.ndarray:
    """Snap a rate in [0, 1] onto the ``1/T`` grid (toward zero)."""
    r = np.asarray(rate, dtype=float)
    return np.clip(np.floor(r * T + 1e-9), 0, T) / T
