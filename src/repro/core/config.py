"""Configuration objects for the EMSTDP algorithm.

The same configuration dataclass drives both the full-precision reference
implementation (:mod:`repro.core.network`) and the on-chip implementation
(:mod:`repro.onchip`).  All rate quantities are *normalized*: a spiking rate
of ``1.0`` means one spike per timestep, i.e. ``T`` spikes over a phase of
length ``T``.  Spike counts are therefore always ``rate * T`` and live on the
grid ``{0, 1/T, ..., 1}``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple


#: Feedback wiring styles supported by EMSTDP (Section III-A of the paper).
FEEDBACK_MODES = ("fa", "dfa")

#: Dynamics backends for the reference implementation.
DYNAMICS_MODES = ("rate", "spike")


@dataclasses.dataclass
class EMSTDPConfig:
    """Hyper-parameters of the EMSTDP learning rule.

    Parameters mirror the paper's experimental setup (Section IV-A): phase
    length ``T = 64`` and learning rate ``eta = 2**-3``.

    Attributes
    ----------
    phase_length:
        Number of timesteps ``T`` in each of the two phases.  A full training
        presentation of one sample takes ``2 * T`` steps.
    learning_rate:
        The ``eta`` of Eq. (7)/(12), applied to normalized rates.
    feedback:
        ``"fa"`` for feedback alignment (a fixed random feedback network with
        one error neuron per forward neuron) or ``"dfa"`` for direct feedback
        alignment (errors broadcast straight from the output-layer error
        neurons).
    feedback_scale:
        Standard deviation scale of the fixed random feedback weights.  The
        effective std of each feedback matrix is
        ``feedback_scale / sqrt(fan_in)``.
    error_gain:
        Loop gain ``g`` of the output error neurons: the rate of an error
        neuron is ``clip(g * |target - predicted|, 0, 1)`` quantized to the
        ``1/T`` grid.  Values above 1 push the phase-2 rates closer to the
        true targets at the cost of oscillation; the closed loop settles at
        ``g / (1 + g)`` of the raw error for one-to-one correction wiring.
    hidden_error_gain:
        Gain of the hidden-layer error neurons on the FA path.
    gate_hidden:
        Apply the surrogate-derivative gate ``h' = [h > 0]`` to hidden-layer
        error neurons (the multi-compartment AND gate of Section III-A).
    gate_output:
        Gate the *output* error neurons by forward activity as well.  The
        paper's loss layer (Eq. 6) carries no ``h'`` factor, so this defaults
        to ``False``.
    use_bias_neuron:
        Append an always-on (rate 1) bias unit to every trainable layer; its
        outgoing weights are learned with the same local rule, which is how a
        bias can be realised on hardware that only adapts synapses.
    dynamics:
        ``"rate"`` solves the phase fixed points in closed form on the
        ``1/T`` grid (fast, used for long experiments); ``"spike"`` simulates
        every timestep with integrate-and-fire neurons (used to validate that
        the closed form matches the actual dynamics).
    phase2_iterations:
        Number of fixed-point iterations used by the rate backend to settle
        the closed loop of phase 2.
    weight_clip:
        Clamp for forward weights, in normalized potential units.  ``None``
        disables clipping (full precision).
    weight_bits:
        If not ``None``, quantize weights to this many bits (signed, uniform
        over ``[-weight_clip, +weight_clip]``) after every update.  The
        on-chip implementation uses 8.
    stochastic_rounding:
        Use stochastic rounding when quantizing weight updates; deterministic
        rounding-to-nearest otherwise.  Essential for small updates to make
        progress on coarse grids.
    init_scale:
        He-style scale for forward weight initialization.
    seed:
        Seed for all randomness (init, feedback matrices, rounding).
    """

    phase_length: int = 64
    learning_rate: float = 2.0 ** -3
    feedback: str = "dfa"
    feedback_scale: float = 1.0
    error_gain: float = 1.0
    hidden_error_gain: float = 1.0
    gate_hidden: bool = True
    gate_output: bool = False
    use_bias_neuron: bool = True
    dynamics: str = "rate"
    phase2_iterations: int = 8
    weight_clip: Optional[float] = None
    weight_bits: Optional[int] = None
    stochastic_rounding: bool = True
    init_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.phase_length < 1:
            raise ValueError("phase_length must be >= 1")
        if self.feedback not in FEEDBACK_MODES:
            raise ValueError(
                f"feedback must be one of {FEEDBACK_MODES}, got {self.feedback!r}"
            )
        if self.dynamics not in DYNAMICS_MODES:
            raise ValueError(
                f"dynamics must be one of {DYNAMICS_MODES}, got {self.dynamics!r}"
            )
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.weight_bits is not None and self.weight_bits < 2:
            raise ValueError("weight_bits must be >= 2 (one sign bit + magnitude)")
        if self.weight_bits is not None and self.weight_clip is None:
            # A quantization grid needs a finite range.
            raise ValueError("weight_bits requires weight_clip to be set")
        if self.phase2_iterations < 1:
            raise ValueError("phase2_iterations must be >= 1")

    @property
    def T(self) -> int:
        """Alias matching the paper's notation for the phase length."""
        return self.phase_length

    def replace(self, **changes) -> "EMSTDPConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


def loihi_default_config(**overrides) -> EMSTDPConfig:
    """Config matching the constraints of the Loihi implementation.

    8-bit weights with stochastic rounding, DFA feedback, and the paper's
    ``T = 64`` / ``eta = 2**-3`` settings.
    """
    base = dict(
        phase_length=64,
        learning_rate=2.0 ** -3,
        feedback="dfa",
        weight_clip=2.0,
        weight_bits=8,
        stochastic_rounding=True,
    )
    base.update(overrides)
    return EMSTDPConfig(**base)


def full_precision_config(**overrides) -> EMSTDPConfig:
    """Config matching the paper's "Python (FP)" software baseline."""
    base = dict(
        phase_length=64,
        learning_rate=2.0 ** -3,
        feedback="dfa",
        weight_clip=None,
        weight_bits=None,
    )
    base.update(overrides)
    return EMSTDPConfig(**base)


def validate_dims(dims: Sequence[int]) -> Tuple[int, ...]:
    """Validate a layer-size tuple ``(n_in, n_h1, ..., n_out)``."""
    dims = tuple(int(d) for d in dims)
    if len(dims) < 2:
        raise ValueError("a network needs at least an input and an output layer")
    if any(d < 1 for d in dims):
        raise ValueError(f"all layer sizes must be >= 1, got {dims}")
    return dims
