"""Declarative experiment configuration.

An :class:`ExperimentSpec` is the *complete* description of one experiment:
which scenario to run (``name`` keys into the scenario registry), the
dataset and its size, the network shape, the backends to compare, and the
seeds to fan out over.  Specs are frozen, JSON-round-trippable values — the
runner writes the spec into every run's ``manifest.json`` so ``--resume``
and later re-runs never depend on command-line history.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """What to run, on what data, over which seeds.

    Attributes
    ----------
    name:
        Scenario registry key (``offline_accuracy``, ``incremental_iol``,
        ``energy_tradeoff``, ...).
    dataset:
        A :data:`repro.data.DATASETS` key (ignored by scenarios that do not
        load data, e.g. the energy sweep).
    n_train / n_test / side:
        Synthetic dataset sizes and image side length.
    hidden:
        Hidden layer widths of the trainable dense network.
    n_classes:
        Output classes (all built-in datasets have 10).
    backends:
        Models to compare where the scenario supports several:
        ``"rate"`` / ``"spike"`` (EMSTDP reference backends),
        ``"backprop"`` (the true-gradient MLP baseline), and ``"chip"`` /
        ``"chip:fa"`` / ``"chip:dfa"`` (the simulated-Loihi trainer).
    epochs:
        Online passes over the training stream.
    phase_length:
        Override for the EMSTDP phase length ``T`` (``None`` keeps each
        config factory's default of 64).
    seeds:
        The independent seeds the runner fans out over; each seed gets its
        own dataset split, model init, and JSONL record.
    tiny:
        Marks the CI-sized variant (also recorded in the manifest).
    params:
        Scenario-specific extras (frontend pretraining, chip sample caps,
        IOL schedule, packing sweep, ...); values must be JSON-safe.
    """

    name: str
    dataset: str = "mnist_like"
    n_train: int = 600
    n_test: int = 200
    side: int = 16
    hidden: Tuple[int, ...] = (100,)
    n_classes: int = 10
    backends: Tuple[str, ...] = ("rate", "spike", "backprop")
    epochs: int = 1
    phase_length: Optional[int] = None
    seeds: Tuple[int, ...] = (0,)
    tiny: bool = False
    params: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "hidden", tuple(int(h) for h in self.hidden))
        object.__setattr__(self, "backends", tuple(self.backends))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not self.seeds:
            raise ValueError("an experiment needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds in {self.seeds}")

    def replace(self, **changes) -> "ExperimentSpec":
        return dataclasses.replace(self, **changes)

    def dims(self, n_in: int) -> Tuple[int, ...]:
        """Full layer tuple for a given input width."""
        return (int(n_in),) + self.hidden + (self.n_classes,)

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["hidden"] = list(self.hidden)
        d["backends"] = list(self.backends)
        d["seeds"] = list(self.seeds)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        return cls(**d)
