"""The experiment runner: seed fan-out, persistence, resume.

One ``Runner.run(spec)`` call executes every seed of the spec, each in its
own worker process (seeds are fully independent: their dataset split,
model init and training stream all derive from the seed), and streams one
JSONL record per finished seed into the run directory.  Records are
written by the parent as futures complete, so a killed run keeps every
finished seed; ``resume`` re-opens the run directory, reads the manifest's
spec and the finished seeds, and only runs what is missing.

Worker processes must be able to re-import this module and look the
scenario up by name, which is why :func:`_seed_worker` is a top-level
function taking only picklable arguments (the spec as a dict).
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback
import uuid
from concurrent.futures import (BrokenExecutor, ProcessPoolExecutor,
                                as_completed)
from pathlib import Path
from typing import List, Optional

from .. import obs
from .spec import ExperimentSpec
from .store import CHECKPOINT_DIR_NAME, RunInfo, RunStore


def new_run_id() -> str:
    """Sortable, collision-safe run id: ``YYYYmmdd-HHMMSS-<hex6>``."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


def _seed_worker(spec_dict: dict, seed: int, ckpt_dir: Optional[str],
                 trace_parent: Optional[str] = None) -> dict:
    """Run one seed of one scenario; returns the record payload.

    ``trace_parent`` is the parent process's ``run`` span id: the seed
    span written by this (possibly separate) process links to it, which
    is what stitches the per-process trace fragments into one tree.
    Kernel timing is emitted as a *delta* against the profiler state at
    entry, so inline execution (no fresh process) reports only this
    seed's kernel activity.
    """
    from .scenarios import get_scenario

    spec = ExperimentSpec.from_dict(spec_dict)
    scenario = get_scenario(spec.name)
    run_dir = Path(ckpt_dir).parent if ckpt_dir else None
    kernel_baseline = obs.kernel_profiler.snapshot()
    t0 = time.perf_counter()
    with obs.trace_bound(obs.trace_path_for(run_dir)):
        with obs.span("seed", parent_id=trace_parent, seed=int(seed),
                      experiment=spec.name) as sp:
            payload = scenario.run_seed(
                spec, int(seed), Path(ckpt_dir) if ckpt_dir else None)
            payload = dict(payload)
            payload.setdefault("series", {})
            payload.setdefault("checkpoints", {})
            payload["seed"] = int(seed)
            payload["duration_s"] = round(time.perf_counter() - t0, 3)
            if sp is not None:
                sp.set(duration_s=payload["duration_s"],
                       metrics=payload.get("metrics", {}))
        obs.emit_kernel_stats(kernel_baseline)
    return payload


@dataclasses.dataclass
class RunResult:
    """What ``Runner.run`` hands back: the run plus its records."""

    run: RunInfo
    records: List[dict]
    skipped_seeds: List[int]

    @property
    def run_id(self) -> str:
        return self.run.run_id

    @property
    def run_dir(self) -> Path:
        return self.run.path

    @property
    def status(self) -> str:
        return self.run.status

    def ok_records(self) -> List[dict]:
        return sorted((r for r in self.records if r.get("status") == "ok"),
                      key=lambda r: r["seed"])

    def error_records(self) -> List[dict]:
        return [r for r in self.records if r.get("status") != "ok"]

    def first_ok(self) -> dict:
        """The lowest-seed finished record; raises if every seed failed."""
        ok = self.ok_records()
        if ok:
            return ok[0]
        detail = ""
        errors = self.error_records()
        if errors:
            detail = (f"; seed {errors[0]['seed']} raised:\n"
                      f"{errors[0].get('error', '')}")
        raise RuntimeError(
            f"run {self.run_id} produced no finished seeds "
            f"(see {self.run_dir / 'records.jsonl'}){detail}")

    def summary(self) -> str:
        """Scenario-rendered results table for the finished seeds."""
        from ..analysis.reporting import format_table
        from .scenarios import get_scenario

        scenario = get_scenario(self.run.experiment)
        headers, rows = scenario.summarize(self.ok_records())
        title = (f"{self.run.experiment} · run {self.run_id} "
                 f"[{self.status}]")
        return format_table(headers, rows, title=title)


class Runner:
    """Executes :class:`ExperimentSpec` seed fan-outs against a run store.

    Parameters
    ----------
    out_root:
        Root of the run store (default ``runs/``).
    max_workers:
        Process pool width; ``1`` runs seeds inline in this process (used
        by the examples and handy under debuggers).  Defaults to one
        worker per pending seed, capped at the CPU count.
    """

    def __init__(self, out_root="runs", max_workers: Optional[int] = None):
        self.store = RunStore(out_root)
        self.max_workers = max_workers

    def run(self, spec: Optional[ExperimentSpec] = None,
            resume: Optional[str] = None,
            progress: Optional[callable] = None) -> RunResult:
        """Run ``spec``, or resume an existing run.

        ``resume`` is a run id (or unique prefix), or ``"latest"`` for the
        newest unfinished run of ``spec.name``.  A resumed run takes its
        spec from the manifest — the caller's ``spec`` is only used to
        select the experiment when ``resume="latest"``.
        """
        if resume is not None:
            if resume == "latest":
                if spec is None:
                    raise ValueError(
                        'resume="latest" needs a spec to name the '
                        "experiment")
                run = self.store.latest(spec.name, unfinished_only=True)
            else:
                run = self.store.find(resume)
            spec = run.spec()
        else:
            if spec is None:
                raise ValueError("need a spec or a run id to resume")
            run = self.store.create_run(spec, new_run_id())

        done = self.store.done_seeds(run)
        pending = [s for s in spec.seeds if s not in done]
        skipped = [s for s in spec.seeds if s in done]
        if progress is not None and skipped:
            progress(f"resuming {run.run_id}: seeds {skipped} already done")

        envelope = {
            "experiment": spec.name,
            "run_id": run.run_id,
            "repro_version": run.manifest["repro_version"],
        }
        records = list(done.values())
        failed = False
        with obs.trace_bound(obs.trace_path_for(run.path)):
            with obs.span("run", experiment=spec.name, run_id=run.run_id,
                          seeds=len(spec.seeds),
                          pending=len(pending)) as root:
                trace_parent = root.span_id if root is not None else None
                for payload in self._execute(spec, pending, run, progress,
                                             trace_parent):
                    record = {**envelope, **payload}
                    record.setdefault("status", "ok")
                    self.store.append_record(run, record)
                    records.append(record)
                    failed = failed or record["status"] != "ok"
                    obs.event("seed_finished", seed=record["seed"],
                              status=record["status"],
                              duration_s=record.get("duration_s"))
                    obs.counter("seeds_finished", experiment=spec.name,
                                status=record["status"])
                    if progress is not None:
                        progress(f"seed {record['seed']}: "
                                 f"{record['status']} "
                                 f"({record.get('duration_s', '?')}s)")
                status = "failed" if failed else "complete"
                if root is not None:
                    root.set(status=status)
        run = self.store.update_status(run, status)
        return RunResult(run=run, records=records, skipped_seeds=skipped)

    # -- execution strategies -------------------------------------------

    def _execute(self, spec: ExperimentSpec, pending: List[int],
                 run: RunInfo, progress: Optional[callable],
                 trace_parent: Optional[str] = None):
        """Yield one record payload per pending seed as they finish."""
        if not pending:
            return
        spec_dict = spec.to_dict()
        ckpt_dir = str(run.path / CHECKPOINT_DIR_NAME)
        workers = self.max_workers
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 1)
        if workers <= 1 or len(pending) == 1:
            yield from self._execute_inline(spec_dict, pending, ckpt_dir,
                                            trace_parent)
            return
        yielded = set()
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(_seed_worker, spec_dict, s, ckpt_dir,
                                       trace_parent): s
                           for s in pending}
                for fut in as_completed(futures):
                    seed = futures[fut]
                    try:
                        payload = fut.result()
                    except BrokenExecutor:
                        raise  # pool itself is gone; fall back below
                    except Exception:
                        # Includes OSError raised by the seed's own work
                        # (e.g. an unwritable checkpoint dir): that is a
                        # seed failure, not a pool failure.
                        payload = _error_payload(seed)
                    yielded.add(seed)
                    yield payload
        except (OSError, BrokenExecutor) as exc:
            # Sandboxes without fork/semaphores (or a pool that died under
            # us): degrade to inline execution for whatever has not
            # finished rather than failing the run.
            if progress is not None:
                progress(f"process pool unavailable ({exc}); "
                         "running remaining seeds inline")
            yield from self._execute_inline(
                spec_dict, [s for s in pending if s not in yielded],
                ckpt_dir, trace_parent)

    @staticmethod
    def _execute_inline(spec_dict: dict, pending: List[int], ckpt_dir: str,
                        trace_parent: Optional[str] = None):
        for seed in pending:
            try:
                yield _seed_worker(spec_dict, seed, ckpt_dir, trace_parent)
            except Exception:
                yield _error_payload(seed)


def _error_payload(seed: int) -> dict:
    return {
        "seed": int(seed),
        "status": "error",
        "error": traceback.format_exc(limit=20),
        "metrics": {}, "series": {}, "checkpoints": {},
    }
