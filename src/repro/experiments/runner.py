"""The experiment runner: seed fan-out, persistence, resume.

One ``Runner.run(spec)`` call plans the run and hands execution to the
shared work-queue executor (:mod:`repro.exec`): every pending seed
becomes one ``run_seed`` task on a SQLite-backed queue in the run
directory, and a spawn-based :class:`~repro.exec.pool.WorkerPool` pulls
them under leases (seeds are fully independent: their dataset split,
model init and training stream all derive from the seed).  The *worker*
appends each seed's record to ``records.jsonl`` the moment it finishes,
so a killed run keeps every finished seed and a SIGKILLed worker's
leased task is requeued rather than lost; ``resume`` re-opens the run
directory, reads the manifest's spec and the finished seeds, and only
enqueues what is missing.

The queue file (``queue.db``) is rebuilt from ``records.jsonl`` on
every invocation and left on disk afterwards for inspection — it is
bookkeeping, not state.
"""

from __future__ import annotations

import dataclasses
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional

from .. import obs
from ..exec import (QUEUE_DB_NAME, Task, TaskQueue, WorkerPool,
                    default_workers, enqueue_seed)
from .spec import ExperimentSpec
from .store import RECORDS_NAME, RunInfo, RunStore, read_jsonl


def new_run_id() -> str:
    """Sortable, collision-safe run id: ``YYYYmmdd-HHMMSS-<hex6>``."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


def fresh_queue(directory: Path) -> TaskQueue:
    """A new, empty :class:`TaskQueue` at ``<directory>/queue.db``.

    Any stale queue file from a previous (possibly killed) invocation
    is removed first — the durable resume state lives in
    ``records.jsonl`` / the manifests, never in the queue.
    """
    db = Path(directory) / QUEUE_DB_NAME
    for suffix in ("", "-journal", "-wal", "-shm"):
        stale = db.parent / (db.name + suffix)
        if stale.exists():
            stale.unlink()
    return TaskQueue(db)


def final_records(run_dir: Path, seeds) -> Dict[int, dict]:
    """seed -> its authoritative record from ``records.jsonl``.

    Prefers the last ``ok`` record per seed (requeue races can leave an
    error line before the retry's ok line); falls back to the last
    record of any status.  Seeds with no record are absent.
    """
    by_seed: Dict[int, dict] = {}
    ok_by_seed: Dict[int, dict] = {}
    for rec in read_jsonl(Path(run_dir) / RECORDS_NAME):
        seed = rec.get("seed")
        if seed is None:
            continue
        by_seed[int(seed)] = rec
        if rec.get("status") == "ok":
            ok_by_seed[int(seed)] = rec
    out: Dict[int, dict] = {}
    for seed in seeds:
        rec = ok_by_seed.get(int(seed), by_seed.get(int(seed)))
        if rec is not None:
            out[int(seed)] = rec
    return out


@dataclasses.dataclass
class RunResult:
    """What ``Runner.run`` hands back: the run plus its records."""

    run: RunInfo
    records: List[dict]
    skipped_seeds: List[int]

    @property
    def run_id(self) -> str:
        return self.run.run_id

    @property
    def run_dir(self) -> Path:
        return self.run.path

    @property
    def status(self) -> str:
        return self.run.status

    def ok_records(self) -> List[dict]:
        return sorted((r for r in self.records if r.get("status") == "ok"),
                      key=lambda r: r["seed"])

    def error_records(self) -> List[dict]:
        return [r for r in self.records if r.get("status") != "ok"]

    def first_ok(self) -> dict:
        """The lowest-seed finished record; raises if every seed failed."""
        ok = self.ok_records()
        if ok:
            return ok[0]
        detail = ""
        errors = self.error_records()
        if errors:
            detail = (f"; seed {errors[0]['seed']} raised:\n"
                      f"{errors[0].get('error', '')}")
        raise RuntimeError(
            f"run {self.run_id} produced no finished seeds "
            f"(see {self.run_dir / 'records.jsonl'}){detail}")

    def summary(self) -> str:
        """Scenario-rendered results table for the finished seeds."""
        from ..analysis.reporting import format_table
        from .scenarios import get_scenario

        scenario = get_scenario(self.run.experiment)
        headers, rows = scenario.summarize(self.ok_records())
        title = (f"{self.run.experiment} · run {self.run_id} "
                 f"[{self.status}]")
        return format_table(headers, rows, title=title)


class Runner:
    """Plans :class:`ExperimentSpec` seed fan-outs over the executor.

    Parameters
    ----------
    out_root:
        Root of the run store (default ``runs/``).
    max_workers:
        Worker-fleet width; ``1`` runs the claim loop inline in this
        process (used by the examples and handy under debuggers).
        Defaults to :func:`repro.exec.default_workers` capped at the
        pending seed count (``REPRO_MAX_WORKERS`` overrides).
    """

    def __init__(self, out_root="runs", max_workers: Optional[int] = None):
        self.store = RunStore(out_root)
        self.max_workers = max_workers

    def run(self, spec: Optional[ExperimentSpec] = None,
            resume: Optional[str] = None,
            progress: Optional[callable] = None) -> RunResult:
        """Run ``spec``, or resume an existing run.

        ``resume`` is a run id (or unique prefix), or ``"latest"`` for the
        newest unfinished run of ``spec.name``.  A resumed run takes its
        spec from the manifest — the caller's ``spec`` is only used to
        select the experiment when ``resume="latest"``.
        """
        if resume is not None:
            if resume == "latest":
                if spec is None:
                    raise ValueError(
                        'resume="latest" needs a spec to name the '
                        "experiment")
                run = self.store.latest(spec.name, unfinished_only=True)
            else:
                run = self.store.find(resume)
            spec = run.spec()
        else:
            if spec is None:
                raise ValueError("need a spec or a run id to resume")
            run = self.store.create_run(spec, new_run_id())

        done = self.store.done_seeds(run)
        pending = [s for s in spec.seeds if s not in done]
        skipped = [s for s in spec.seeds if s in done]
        if progress is not None and skipped:
            progress(f"resuming {run.run_id}: seeds {skipped} already done")

        with obs.trace_bound(obs.trace_path_for(run.path)):
            with obs.span("run", experiment=spec.name, run_id=run.run_id,
                          seeds=len(spec.seeds),
                          pending=len(pending)) as root:
                trace_parent = root.span_id if root is not None else None
                if pending:
                    self._execute(spec, pending, run, progress,
                                  trace_parent)
                finals = final_records(run.path, spec.seeds)
                failed = any(
                    finals.get(int(s), {}).get("status") != "ok"
                    for s in spec.seeds)
                status = "failed" if failed else "complete"
                if root is not None:
                    root.set(status=status)
        records = ([done[s] for s in spec.seeds if s in done]
                   + [finals[int(s)] for s in pending
                      if int(s) in finals])
        run = self.store.update_status(run, status)
        return RunResult(run=run, records=records, skipped_seeds=skipped)

    # -- execution -------------------------------------------------------

    def _execute(self, spec: ExperimentSpec, pending: List[int],
                 run: RunInfo, progress: Optional[callable],
                 trace_parent: Optional[str] = None) -> None:
        """Enqueue the pending seeds and drain the queue to empty."""
        queue = fresh_queue(run.path)
        spec_dict = spec.to_dict()
        for seed in pending:
            enqueue_seed(
                queue,
                experiment=spec.name,
                run_id=run.run_id,
                run_dir=str(run.path),
                spec=spec_dict,
                seed=seed,
                repro_version=run.manifest.get("repro_version"),
                queue_parent=trace_parent,
            )
        workers = self.max_workers
        if workers is None:
            workers = min(default_workers(), len(pending))

        def on_done(task: Task, result: dict) -> None:
            seed = result.get("seed", task.payload.get("seed"))
            status = result.get("status", "error")
            duration = result.get("duration_s")
            obs.event("seed_finished", seed=seed, status=status,
                      duration_s=duration)
            obs.counter("seeds_finished", experiment=spec.name,
                        status=status)
            if progress is not None:
                progress(f"seed {seed}: {status} ({duration}s)")

        WorkerPool(queue, workers=workers).run(
            on_task_done=on_done, progress=progress)
