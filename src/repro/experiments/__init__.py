"""Config-driven experiment orchestration.

The pieces, bottom-up:

* :class:`ExperimentSpec` — a frozen, JSON-round-trippable description of
  one experiment (scenario, dataset, network shape, backends, seeds).
* :data:`SCENARIOS` / :func:`get_scenario` — the registry of runnable
  scenario families (``offline_accuracy``, ``incremental_iol``,
  ``energy_tradeoff``, plus anything you :func:`register`).
* :class:`Runner` — fans independent seeds out over a process pool,
  writes one JSONL record (and checkpoints) per seed into
  ``runs/<experiment>/<run_id>/``, and resumes killed runs from the
  manifest.
* :class:`RunStore` — reads/writes that directory tree for the CLI's
  ``list`` / ``show`` / ``compare``.

``python -m repro`` is a thin argparse layer over these.
"""

from .runner import Runner, RunResult, new_run_id
from .scenarios import SCENARIOS, Scenario, get_scenario, register
from .spec import ExperimentSpec
from .store import RunInfo, RunStore

__all__ = ["ExperimentSpec", "Runner", "RunResult", "RunInfo", "RunStore",
           "SCENARIOS", "Scenario", "get_scenario", "register",
           "new_run_id"]
