"""Built-in experiment scenarios reproducing the paper's result set.

``offline_accuracy``
    Table I's comparison: the EMSTDP reference implementation (``rate`` and
    ``spike`` backends) and/or the simulated-Loihi trainer vs. the
    true-backprop MLP baseline, trained online on the same stream.
``incremental_iol``
    The Section IV-B / Fig. 4 incremental online learning protocol
    (two-step learn-new / retrain-mixed schedule with replay).
``energy_tradeoff``
    The Fig. 3 neurons-per-core sweep through the chip energy model, for
    FA and DFA feedback.
``noise_robustness``
    Accuracy under input corruption: train on the clean stream, evaluate
    on both the clean test set and a corrupted copy at
    ``params["noise_level"]`` — one point of the robustness surface the
    ``noise_robustness`` sweep maps out.
``timing_precision``
    Accuracy and modeled per-inference chip energy at one timing
    precision ``T`` (``phase_length``) — one point of the ``t_sweep``
    axis extending the Fig. 3 trade-off story to the time dimension.

A scenario bundles three functions: ``build_spec`` (the declarative
default, with a ``tiny`` CI-sized variant), ``run_seed`` (the work for one
seed — executed in a worker process by the runner), and ``summarize``
(records -> table for ``python -m repro show``).  Register new scenarios
with :func:`register`; the CLI and runner discover them by name.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..analysis.tradeoff import (as_series, best_energy_point,
                                 sweep_neurons_per_core)
from ..baselines.rate_ann import BackpropMLP
from ..core.config import full_precision_config, loihi_default_config
from ..core.network import EMSTDPNetwork
from ..data.loaders import load_dataset
from ..incremental.protocol import (IOLConfig, IncrementalOnlineLearner,
                                    forgetting_dip, recovery)
from ..persist import save_checkpoint
from .spec import ExperimentSpec

Summary = Tuple[List[str], List[List[object]]]


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, runnable experiment family."""

    name: str
    description: str
    build_spec: Callable[..., ExperimentSpec]
    run_seed: Callable[[ExperimentSpec, int, Optional[Path]], dict]
    summarize: Callable[[Sequence[dict]], Summary]


SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    return SCENARIOS[name]


# ---------------------------------------------------------------------------
# offline_accuracy
# ---------------------------------------------------------------------------

def _offline_spec(tiny: bool = False, **overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        name="offline_accuracy",
        dataset="mnist_like", n_train=600, n_test=200, side=16,
        hidden=(100,), backends=("rate", "spike", "backprop"),
        params={"chip_train_limit": 300, "chip_test_limit": 100},
    )
    if tiny:
        spec = spec.replace(
            n_train=96, n_test=48, side=8, hidden=(24,), phase_length=16,
            tiny=True,
            params={"chip_train_limit": 96, "chip_test_limit": 48},
        )
    return spec.replace(**overrides) if overrides else spec


def _chip_feedback(backend: str) -> str:
    return backend.split(":", 1)[1] if ":" in backend else "dfa"


def _run_offline_seed(spec: ExperimentSpec, seed: int,
                      ckpt_dir: Optional[Path]) -> dict:
    p = spec.params
    train, test = load_dataset(spec.dataset, n_train=spec.n_train,
                               n_test=spec.n_test, side=spec.side, seed=seed)
    if p.get("use_frontend"):
        from ..models import ConvFrontend, paper_topology
        channels = train.images.shape[3] if train.images.ndim == 4 else 1
        frontend = ConvFrontend(paper_topology(spec.side, channels),
                                seed=seed)
        with obs.span("frontend_pretrain",
                      epochs=int(p.get("frontend_epochs", 3))):
            frontend.pretrain(train.images, train.labels,
                              epochs=int(p.get("frontend_epochs", 3)))
        xs, xte = frontend.features(train.images), frontend.features(
            test.images)
    else:
        frontend = None
        xs, xte = train.flat(), test.flat()
    ys, yte = train.labels, test.labels
    dims = spec.dims(xs.shape[1])

    metrics: Dict[str, dict] = {}
    checkpoints: Dict[str, str] = {}
    for backend in spec.backends:
        if backend.startswith("chip"):
            model, entry = _run_chip_backend(spec, seed, backend, frontend,
                                             train, test, xs, xte)
        else:
            model, entry = _run_soft_backend(spec, seed, backend, dims,
                                             xs, ys, xte, yte)
        metrics[backend] = entry
        if ckpt_dir is not None:
            stem = Path(ckpt_dir) / f"seed{seed}-{backend.replace(':', '-')}"
            save_checkpoint(model, stem, meta={
                "experiment": spec.name, "seed": seed, "backend": backend})
            checkpoints[backend] = stem.name
    return {"metrics": metrics, "checkpoints": checkpoints}


def _build_soft_model(spec, seed, backend, dims):
    p = spec.params
    if backend == "backprop":
        return BackpropMLP(dims, lr=float(p.get("backprop_lr", 0.05)),
                           seed=seed)
    if backend in ("rate", "spike"):
        cfg_kw = dict(seed=seed, dynamics=backend)
        if spec.phase_length:
            cfg_kw["phase_length"] = spec.phase_length
        return EMSTDPNetwork(dims, full_precision_config(**cfg_kw))
    raise ValueError(f"unknown backend {backend!r}")


def _run_soft_backend(spec, seed, backend, dims, xs, ys, xte, yte):
    with obs.span("backend", backend=backend):
        model = _build_soft_model(spec, seed, backend, dims)
        train_acc = 0.0
        for epoch in range(spec.epochs):
            with obs.span("fit_epoch", backend=backend, epoch=epoch) as sp:
                train_acc = model.train_stream(xs, ys)
                if sp is not None:
                    sp.set(train_acc=float(train_acc))
        with obs.span("evaluate", backend=backend, n=len(xte)):
            test_acc = model.evaluate_batch(xte, yte)
    return model, {"train_acc": float(train_acc), "test_acc": float(test_acc)}


def _run_backend(spec, seed, backend, dims, xs, ys, xte, yte,
                 train=None, test=None, frontend=None):
    """Dispatch one backend: soft families or the chip's batched runtime.

    The chip path needs the raw datasets (labels and optional frontend
    features come from them); scenarios that load data pass them through so
    ``backend="chip"``/``"chip:fa"``/``"chip:dfa"`` works everywhere, not
    just in ``offline_accuracy``.
    """
    if backend.startswith("chip"):
        if train is None or test is None:
            raise ValueError(
                f"backend {backend!r} needs the scenario's datasets")
        return _run_chip_backend(spec, seed, backend, frontend,
                                 train, test, xs, xte)
    return _run_soft_backend(spec, seed, backend, dims, xs, ys, xte, yte)


def _model_T(model) -> int:
    """Phase length of any backend (the chip trainer nests its config)."""
    config = getattr(model, "config", None)
    if config is None:
        config = getattr(getattr(model, "model", None), "config", None)
    return int(config.T) if config is not None else 1


def _run_chip_backend(spec, seed, backend, frontend, train, test, xs, xte):
    from ..models.convert import frontend_matrices
    from ..onchip import LoihiEMSTDPTrainer, build_emstdp_network

    p = spec.params
    cfg_kw = dict(seed=seed, feedback=_chip_feedback(backend),
                  learning_rate=float(p.get("chip_learning_rate", 2.0 ** -5)),
                  error_gain=float(p.get("chip_error_gain", 2.0)))
    if spec.phase_length:
        cfg_kw["phase_length"] = spec.phase_length
    cfg = loihi_default_config(**cfg_kw)
    with obs.span("build_chip_network", backend=backend):
        if frontend is not None and p.get("onchip_frontend"):
            # The Section IV-A arrangement: conv layers unrolled into fixed
            # on-chip connectivity, raw images programmed as input biases.
            mats, biases = frontend_matrices(frontend)
            model = build_emstdp_network(
                spec.dims(frontend.n_features), cfg,
                frontend_layers=list(zip(mats, biases)))
            tx, ttx = train.flat(), test.flat()
        else:
            model = build_emstdp_network(spec.dims(xs.shape[1]), cfg)
            tx, ttx = xs, xte
        trainer = LoihiEMSTDPTrainer(
            model, neurons_per_core=int(p.get("neurons_per_core", 10)),
            batch_replicas=int(p.get("chip_batch_replicas", 16)))
    lim = min(int(p.get("chip_train_limit", len(tx))), len(tx))
    tlim = min(int(p.get("chip_test_limit", len(ttx))), len(ttx))
    # Training keeps the paper's online semantics by default; the
    # batch-parallel replicated runtime ("minibatch", frozen weights +
    # mean-of-deltas write-back) is opt-in per spec.
    update_mode = str(p.get("chip_update_mode", "online"))
    train_acc = 0.0
    for epoch in range(spec.epochs):
        with obs.span("fit_epoch", backend=backend, epoch=epoch,
                      n=int(lim)) as sp:
            out = trainer.fit_batch(tx[:lim], train.labels[:lim],
                                    update_mode=update_mode)
            train_acc = out["accuracy"]
            if sp is not None:
                sp.set(train_acc=float(train_acc))
    # Evaluation always rides the batched replicated runtime (inference is
    # deterministic, so this equals the sequential loop exactly).
    with obs.span("evaluate", backend=backend, n=int(tlim)):
        test_acc = trainer.evaluate_batch(ttx[:tlim], test.labels[:tlim])
    report = trainer.energy_report()
    return trainer, {
        "train_acc": float(train_acc), "test_acc": float(test_acc),
        "cores_used": trainer.mapping.cores_used,
        "fps": float(report.fps), "power_w": float(report.power_w),
        "energy_per_sample_mj": float(report.energy_per_sample_mj),
    }


def _summarize_offline(records: Sequence[dict]) -> Summary:
    headers = ["seed", "backend", "train_acc", "test_acc"]
    rows = []
    for rec in records:
        for backend, entry in rec.get("metrics", {}).items():
            rows.append([rec["seed"], backend,
                         entry.get("train_acc", ""),
                         entry.get("test_acc", "")])
    return headers, rows


register(Scenario(
    name="offline_accuracy",
    description="EMSTDP (rate/spike/chip) vs. true-backprop MLP, online "
                "training accuracy per seed (Table I)",
    build_spec=_offline_spec,
    run_seed=_run_offline_seed,
    summarize=_summarize_offline,
))


# ---------------------------------------------------------------------------
# incremental_iol
# ---------------------------------------------------------------------------

def _iol_spec(tiny: bool = False, **overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        name="incremental_iol",
        dataset="mnist_like", n_train=900, n_test=300, side=16,
        hidden=(100,), backends=("rate",),
        # The paper's arrangement: a pretrained conv frontend feeds the
        # incrementally trained dense classifier.
        params={"iol": {}, "use_frontend": True, "frontend_epochs": 3},
    )
    if tiny:
        spec = spec.replace(
            n_train=220, n_test=80, side=8, hidden=(24,), phase_length=16,
            tiny=True,
            params={"iol": {"rounds_per_increment": 2, "chunk_size": 20,
                            "replay_per_round": 20}},
        )
    return spec.replace(**overrides) if overrides else spec


def _run_iol_seed(spec: ExperimentSpec, seed: int,
                  ckpt_dir: Optional[Path]) -> dict:
    train, test = load_dataset(spec.dataset, n_train=spec.n_train,
                               n_test=spec.n_test, side=spec.side, seed=seed)
    from ..data.synth import Dataset
    if spec.params.get("use_frontend"):
        from ..models import ConvFrontend, paper_topology
        channels = train.images.shape[3] if train.images.ndim == 4 else 1
        frontend = ConvFrontend(paper_topology(spec.side, channels),
                                seed=seed)
        frontend.pretrain(train.images, train.labels,
                          epochs=int(spec.params.get("frontend_epochs", 3)))
        ftrain = Dataset(frontend.features(train.images), train.labels)
        ftest = Dataset(frontend.features(test.images), test.labels)
    else:
        ftrain = Dataset(train.flat(), train.labels)
        ftest = Dataset(test.flat(), test.labels)
    cfg_kw = dict(seed=seed)
    if spec.phase_length:
        cfg_kw["phase_length"] = spec.phase_length
    net = EMSTDPNetwork(spec.dims(ftrain.images.shape[1]),
                        full_precision_config(**cfg_kw))
    iol_cfg = IOLConfig(seed=seed, **spec.params.get("iol", {}))
    learner = IncrementalOnlineLearner(net, ftrain, ftest, iol_cfg)
    with obs.span("iol_protocol", seed=seed):
        result = learner.run()
    curves = result.curves()
    checkpoints: Dict[str, str] = {}
    if ckpt_dir is not None:
        stem = Path(ckpt_dir) / f"seed{seed}-final"
        save_checkpoint(net, stem, meta={
            "experiment": spec.name, "seed": seed})
        checkpoints["final"] = stem.name
    return {
        "metrics": {
            "final_acc": float(curves["after_step2"][-1]),
            "forgetting_dip": float(forgetting_dip(result)),
            "recovery": float(recovery(result)),
            "n_rounds": len(result.records),
        },
        "series": {k: [float(v) for v in vals]
                   for k, vals in curves.items()},
        "checkpoints": checkpoints,
    }


def _summarize_iol(records: Sequence[dict]) -> Summary:
    headers = ["seed", "final_acc", "forgetting_dip", "recovery", "n_rounds"]
    rows = [[rec["seed"]] + [rec.get("metrics", {}).get(k, "")
                             for k in headers[1:]]
            for rec in records]
    return headers, rows


register(Scenario(
    name="incremental_iol",
    description="Two-step incremental online learning protocol "
                "(Section IV-B, Fig. 4): forgetting dip and recovery",
    build_spec=_iol_spec,
    run_seed=_run_iol_seed,
    summarize=_summarize_iol,
))


# ---------------------------------------------------------------------------
# energy_tradeoff
# ---------------------------------------------------------------------------

def _energy_spec(tiny: bool = False, **overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        name="energy_tradeoff",
        hidden=(100,), backends=("fa", "dfa"),
        params={"n_in": 128, "packings": [5, 10, 15, 20, 25, 30],
                "n_samples": 10_000},
    )
    if tiny:
        spec = spec.replace(
            hidden=(20,), tiny=True,
            params={"n_in": 64, "packings": [5, 10, 15],
                    "n_samples": 2_000},
        )
    return spec.replace(**overrides) if overrides else spec


def _run_energy_seed(spec: ExperimentSpec, seed: int,
                     ckpt_dir: Optional[Path]) -> dict:
    del ckpt_dir  # nothing is trained in the sweep, so nothing to persist
    p = spec.params
    dims = spec.dims(int(p.get("n_in", 128)))
    metrics: Dict[str, dict] = {}
    series: Dict[str, dict] = {}
    for feedback in spec.backends:
        cfg = loihi_default_config(seed=seed, feedback=feedback)
        points = sweep_neurons_per_core(
            dims, cfg, packings=tuple(p.get("packings", (5, 10, 15, 20))),
            n_samples=int(p.get("n_samples", 10_000)))
        best = best_energy_point(points)
        metrics[feedback] = {
            "best_packing": best.neurons_per_core,
            "cores_used": best.cores_used,
            "energy_per_sample_mj": best.energy_per_sample_mj,
            "power_w": best.active_power_w,
            "time_s": best.time_s,
        }
        series[feedback] = as_series(points)
    return {"metrics": metrics, "series": series, "checkpoints": {}}


def _summarize_energy(records: Sequence[dict]) -> Summary:
    headers = ["seed", "feedback", "best_packing", "cores_used",
               "energy_per_sample_mj", "power_w", "time_s"]
    rows = []
    for rec in records:
        for feedback, entry in rec.get("metrics", {}).items():
            rows.append([rec["seed"], feedback] +
                        [entry.get(k, "") for k in headers[2:]])
    return headers, rows


register(Scenario(
    name="energy_tradeoff",
    description="Neurons-per-core energy/latency sweep through the chip "
                "model, FA vs. DFA (Fig. 3)",
    build_spec=_energy_spec,
    run_seed=_run_energy_seed,
    summarize=_summarize_energy,
))


# ---------------------------------------------------------------------------
# noise_robustness
# ---------------------------------------------------------------------------

def _noise_spec(tiny: bool = False, **overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        name="noise_robustness",
        dataset="mnist_like", n_train=400, n_test=160, side=16,
        hidden=(64,), backends=("rate",),
        params={"noise_level": 0.2, "noise_kind": "gaussian"},
    )
    if tiny:
        spec = spec.replace(
            n_train=64, n_test=32, side=8, hidden=(16,), phase_length=16,
            tiny=True)
    return spec.replace(**overrides) if overrides else spec


def _run_noise_seed(spec: ExperimentSpec, seed: int,
                    ckpt_dir: Optional[Path]) -> dict:
    from ..data.corruption import corrupt_images

    p = spec.params
    level = float(p.get("noise_level", 0.2))
    kind = str(p.get("noise_kind", "gaussian"))
    train, test = load_dataset(spec.dataset, n_train=spec.n_train,
                               n_test=spec.n_test, side=spec.side, seed=seed)
    # Derived corruption seed, disjoint from the split seeds (the test
    # split already uses seed + 10_000).
    noisy = corrupt_images(test.images, level, rng=seed + 20_000, kind=kind)
    xs, ys = train.flat(), train.labels
    xte, yte = test.flat(), test.labels
    xno = noisy.reshape(len(noisy), -1)
    dims = spec.dims(xs.shape[1])
    metrics: Dict[str, dict] = {}
    checkpoints: Dict[str, str] = {}
    for backend in spec.backends:
        model, entry = _run_backend(spec, seed, backend, dims,
                                    xs, ys, xte, yte, train=train, test=test)
        noisy_acc = float(model.evaluate_batch(xno, yte))
        entry["noisy_acc"] = noisy_acc
        entry["degradation"] = float(entry["test_acc"] - noisy_acc)
        entry["noise_level"] = level
        metrics[backend] = entry
        if ckpt_dir is not None:
            stem = Path(ckpt_dir) / f"seed{seed}-{backend.replace(':', '-')}"
            save_checkpoint(model, stem, meta={
                "experiment": spec.name, "seed": seed, "backend": backend,
                "noise_level": level, "noise_kind": kind})
            checkpoints[backend] = stem.name
    return {"metrics": metrics, "checkpoints": checkpoints}


def _summarize_noise(records: Sequence[dict]) -> Summary:
    headers = ["seed", "backend", "noise_level", "test_acc", "noisy_acc",
               "degradation"]
    rows = []
    for rec in records:
        for backend, entry in rec.get("metrics", {}).items():
            rows.append([rec["seed"], backend] +
                        [entry.get(k, "") for k in headers[2:]])
    return headers, rows


register(Scenario(
    name="noise_robustness",
    description="Accuracy under input corruption (clean vs. corrupted "
                "test set at params['noise_level'])",
    build_spec=_noise_spec,
    run_seed=_run_noise_seed,
    summarize=_summarize_noise,
))


# ---------------------------------------------------------------------------
# timing_precision
# ---------------------------------------------------------------------------

def _timing_spec(tiny: bool = False, **overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        name="timing_precision",
        dataset="mnist_like", n_train=400, n_test=160, side=16,
        hidden=(64,), backends=("rate",), phase_length=64,
    )
    if tiny:
        spec = spec.replace(
            n_train=64, n_test=32, side=8, hidden=(16,), phase_length=16,
            tiny=True)
    return spec.replace(**overrides) if overrides else spec


def _run_timing_seed(spec: ExperimentSpec, seed: int,
                     ckpt_dir: Optional[Path]) -> dict:
    from ..serve.telemetry import estimate_request_energy_mj

    train, test = load_dataset(spec.dataset, n_train=spec.n_train,
                               n_test=spec.n_test, side=spec.side, seed=seed)
    xs, ys = train.flat(), train.labels
    xte, yte = test.flat(), test.labels
    dims = spec.dims(xs.shape[1])
    metrics: Dict[str, dict] = {}
    checkpoints: Dict[str, str] = {}
    for backend in spec.backends:
        model, entry = _run_backend(spec, seed, backend, dims,
                                    xs, ys, xte, yte, train=train, test=test)
        entry["T"] = _model_T(model)
        entry["energy_mj_per_inference"] = float(
            estimate_request_energy_mj(model))
        metrics[backend] = entry
        if ckpt_dir is not None:
            stem = Path(ckpt_dir) / f"seed{seed}-{backend.replace(':', '-')}"
            save_checkpoint(model, stem, meta={
                "experiment": spec.name, "seed": seed, "backend": backend,
                "T": entry["T"]})
            checkpoints[backend] = stem.name
    return {"metrics": metrics, "checkpoints": checkpoints}


def _summarize_timing(records: Sequence[dict]) -> Summary:
    headers = ["seed", "backend", "T", "test_acc",
               "energy_mj_per_inference"]
    rows = []
    for rec in records:
        for backend, entry in rec.get("metrics", {}).items():
            rows.append([rec["seed"], backend] +
                        [entry.get(k, "") for k in headers[2:]])
    return headers, rows


register(Scenario(
    name="timing_precision",
    description="Accuracy and modeled per-inference chip energy at one "
                "timing precision T (the t_sweep axis)",
    build_spec=_timing_spec,
    run_seed=_run_timing_seed,
    summarize=_summarize_timing,
))
