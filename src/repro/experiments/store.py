"""The on-disk run store: ``runs/<experiment>/<run_id>/``.

Layout of one run directory::

    runs/offline_accuracy/20260729-103015-ab12cd/
        manifest.json     # spec + status + versions (written first)
        records.jsonl     # one line per finished seed, appended atomically
        checkpoints/      # <stem>.npz + <stem>.json per saved model

``manifest.json`` is the source of truth for resuming: it embeds the full
:class:`~repro.experiments.spec.ExperimentSpec`, so ``--resume`` never
depends on the original command line.  ``records.jsonl`` is append-only;
a seed counts as done once its ``status: "ok"`` line is on disk, which is
what makes a killed run resumable without re-running finished seeds.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from .spec import ExperimentSpec

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"
CHECKPOINT_DIR_NAME = "checkpoints"

#: Bump when the run-directory layout changes.
STORE_FORMAT_VERSION = 1


# -- helpers shared with the sweep store (repro.sweeps.store) --------------

def append_jsonl(path: Path, record: dict) -> None:
    """Append one record as a single ``O_APPEND`` write.

    POSIX guarantees a single ``write(2)`` on an ``O_APPEND`` fd lands
    atomically at the end of the file, so concurrent executor workers
    can append to one ``records.jsonl`` without interleaving lines.
    The byte format matches the historical buffered append exactly.
    """
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    fd = os.open(str(path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)

def read_jsonl(path: Path) -> List[dict]:
    """Parsed JSONL lines (skips blanks and a torn trailing line).

    A process killed mid-append can leave a torn last line; every
    complete record before it is still valid.
    """
    out: List[dict] = []
    if not path.is_file():
        return out
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return out


def resolve_id(items, ident: str, id_of, what: str, where):
    """Locate one item by exact id or unique id prefix.

    ``id_of`` extracts an item's id; ``what`` names the item kind in the
    ``KeyError`` messages (``"run"``, ``"sweep"``).
    """
    matches = [it for it in items
               if id_of(it) == ident or id_of(it).startswith(ident)]
    exact = [it for it in matches if id_of(it) == ident]
    if exact:
        return exact[0]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise KeyError(f"no {what} {ident!r} under {where}")
    raise KeyError(f"{what} id prefix {ident!r} is ambiguous: "
                   f"{[id_of(it) for it in matches]}")


def pick_latest(items, status_of, label: str, where,
                unfinished_only: bool = False):
    """The last item in store order, optionally skipping complete ones.

    ``label`` describes the collection in the ``KeyError`` message (e.g.
    ``"runs of 'offline_accuracy'"``, ``"sweeps"``).
    """
    if unfinished_only:
        items = [it for it in items if status_of(it) != "complete"]
    if not items:
        kind = "unfinished " if unfinished_only else ""
        raise KeyError(f"no {kind}{label} under {where}")
    return items[-1]


@dataclasses.dataclass(frozen=True)
class RunInfo:
    """A located run: its directory plus the parsed manifest."""

    experiment: str
    run_id: str
    path: Path
    manifest: dict

    @property
    def status(self) -> str:
        return self.manifest.get("status", "unknown")

    def spec(self) -> ExperimentSpec:
        return ExperimentSpec.from_dict(self.manifest["spec"])


class RunStore:
    """Reads and writes the ``runs/`` directory tree."""

    def __init__(self, root="runs"):
        self.root = Path(root)

    # -- paths -----------------------------------------------------------

    def run_dir(self, experiment: str, run_id: str) -> Path:
        return self.root / experiment / run_id

    # -- writing ---------------------------------------------------------

    def create_run(self, spec: ExperimentSpec, run_id: str) -> RunInfo:
        from .. import __version__

        path = self.run_dir(spec.name, run_id)
        if path.exists():
            raise FileExistsError(f"run directory {path} already exists")
        (path / CHECKPOINT_DIR_NAME).mkdir(parents=True)
        manifest = {
            "store_format_version": STORE_FORMAT_VERSION,
            "repro_version": __version__,
            "experiment": spec.name,
            "run_id": run_id,
            "spec": spec.to_dict(),
            "status": "running",
            "seeds": list(spec.seeds),
        }
        self._write_manifest(path, manifest)
        (path / RECORDS_NAME).touch()
        return RunInfo(spec.name, run_id, path, manifest)

    def update_status(self, run: RunInfo, status: str) -> RunInfo:
        manifest = dict(run.manifest)
        manifest["status"] = status
        self._write_manifest(run.path, manifest)
        return RunInfo(run.experiment, run.run_id, run.path, manifest)

    def append_record(self, run: RunInfo, record: dict) -> None:
        append_jsonl(run.path / RECORDS_NAME, record)

    @staticmethod
    def _write_manifest(path: Path, manifest: dict) -> None:
        tmp = path / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        tmp.replace(path / MANIFEST_NAME)

    # -- reading ---------------------------------------------------------

    def list_runs(self, experiment: Optional[str] = None) -> List[RunInfo]:
        """All runs (newest directory name last), optionally filtered."""
        runs: List[RunInfo] = []
        if not self.root.is_dir():
            return runs
        for exp_dir in sorted(self.root.iterdir()):
            if not exp_dir.is_dir():
                continue
            if experiment is not None and exp_dir.name != experiment:
                continue
            for run_dir in sorted(exp_dir.iterdir()):
                manifest_path = run_dir / MANIFEST_NAME
                if not manifest_path.is_file():
                    continue
                manifest = json.loads(manifest_path.read_text())
                runs.append(RunInfo(exp_dir.name, run_dir.name, run_dir,
                                    manifest))
        return runs

    def find(self, run_id: str) -> RunInfo:
        """Locate a run by id (or unique id prefix) across experiments."""
        return resolve_id(self.list_runs(), run_id,
                          lambda r: r.run_id, "run", self.root)

    def latest(self, experiment: str,
               unfinished_only: bool = False) -> RunInfo:
        return pick_latest(self.list_runs(experiment), lambda r: r.status,
                           f"runs of {experiment!r}", self.root,
                           unfinished_only=unfinished_only)

    def records(self, run: RunInfo) -> List[dict]:
        """Parsed ``records.jsonl`` lines (skips a torn trailing line)."""
        return read_jsonl(run.path / RECORDS_NAME)

    def done_seeds(self, run: RunInfo) -> Dict[int, dict]:
        """seed -> record for every seed with an ``ok`` record on disk."""
        return {int(rec["seed"]): rec for rec in self.records(run)
                if rec.get("status") == "ok"}
