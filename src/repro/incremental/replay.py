"""Replay store for the IOL protocol's step-2 retraining.

Holds per-class sample pools; sampling is class-balanced ("an equal size
sample of old classes", Section IV-B).  New observations of old classes —
which "may have different distribution... or could simply be noise or
variations caused by the input device/sensor" — are added with ``add`` as
they arrive, so the store naturally mixes old and fresh observations.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..seeding import as_rng


class ReplayStore:
    """Class-balanced reservoir of past observations."""

    def __init__(self, per_class_capacity: int = 200,
                 rng: Optional[np.random.Generator] = None):
        if per_class_capacity < 1:
            raise ValueError("per_class_capacity must be >= 1")
        self.per_class_capacity = int(per_class_capacity)
        self.rng = as_rng(rng)
        self._pools: Dict[int, List[np.ndarray]] = defaultdict(list)
        self._seen: Dict[int, int] = defaultdict(int)

    def add(self, x: np.ndarray, label: int) -> None:
        """Reservoir-sample ``x`` into its class pool."""
        pool = self._pools[label]
        self._seen[label] += 1
        if len(pool) < self.per_class_capacity:
            pool.append(np.asarray(x, dtype=float).copy())
        else:
            j = int(self.rng.integers(0, self._seen[label]))
            if j < self.per_class_capacity:
                pool[j] = np.asarray(x, dtype=float).copy()

    @property
    def classes(self) -> List[int]:
        return sorted(k for k, pool in self._pools.items() if pool)

    def __len__(self) -> int:
        return sum(len(p) for p in self._pools.values())

    def sample(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ~``n`` samples balanced across stored classes."""
        classes = self.classes
        if not classes or n < 1:
            return np.empty((0,)), np.empty((0,), dtype=np.int64)
        per_class = max(n // len(classes), 1)
        xs, ys = [], []
        for c in classes:
            pool = self._pools[c]
            take = min(per_class, len(pool))
            idx = self.rng.choice(len(pool), size=take, replace=False)
            xs.extend(pool[i] for i in idx)
            ys.extend([c] * take)
        order = self.rng.permutation(len(xs))
        return np.stack(xs)[order], np.asarray(ys, dtype=np.int64)[order]
