"""Incremental online learning (Section IV-B, Fig. 4).

The experiment: pretrain on 4 randomly chosen classes, then run three
*incremental training iterations*, each introducing 2 new classes.  The
per-class data is split into 5 chunks so each iteration spans 5 *rounds*;
every round applies an alternating two-step schedule (after [23]):

* **step 1 — learn new classes.**  Approximates cross-distillation by
  disabling the old classes' classifier neurons and lowering the learning
  rate, then training on the round's chunk of new-class samples only.
* **step 2 — retrain old + new.**  Cross-entropy-style retraining on the
  new-class chunk plus an equally sized replay sample of old classes drawn
  from a store that also receives fresh old-class observations (modelling
  concept drift).

Accuracy over the currently *observed* classes is recorded after each step,
yielding the two curves of Fig. 4 (step-1 curve shows the catastrophic-
forgetting dip at each introduction; step-2 recovers it).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.network import EMSTDPNetwork
from ..data.synth import Dataset
from .replay import ReplayStore


@dataclasses.dataclass
class IOLConfig:
    """Protocol hyper-parameters (defaults follow Section IV-B)."""

    initial_classes: int = 4
    classes_per_increment: int = 2
    n_increments: int = 3
    rounds_per_increment: int = 5
    step1_lr_scale: float = 0.25
    chunk_size: int = 60
    replay_per_round: int = 60
    seed: int = 0


@dataclasses.dataclass
class RoundRecord:
    """Accuracy bookkeeping for one round (one point pair in Fig. 4)."""

    round_index: int
    increment: int
    observed_classes: List[int]
    acc_after_step1: float
    acc_after_step2: float
    new_classes: List[int]


@dataclasses.dataclass
class IOLResult:
    records: List[RoundRecord]
    class_order: List[int]
    baseline_accuracy: Optional[float] = None

    def curves(self) -> Dict[str, List[float]]:
        """The Fig. 4 series: accuracy after step 1 and after step 2."""
        return {
            "rounds": [r.round_index for r in self.records],
            "after_step1": [r.acc_after_step1 for r in self.records],
            "after_step2": [r.acc_after_step2 for r in self.records],
            "introduction_rounds": [r.round_index for r in self.records
                                    if r.new_classes and
                                    r.round_index == min(
                                        q.round_index for q in self.records
                                        if q.increment == r.increment)],
        }


class IncrementalOnlineLearner:
    """Runs the two-step IOL protocol on any EMSTDP-style trainer.

    The model object must expose ``train_stream(xs, ys, lr_scale=...)``,
    ``evaluate(xs, ys)`` and ``set_class_mask(classes)`` — satisfied by
    :class:`repro.core.EMSTDPNetwork` (and adaptable to the on-chip
    trainer).  Training always runs online (the protocol's semantics depend
    on per-sample updates), but the frequent accuracy probes after each
    step are inference-only and embarrassingly parallel: when the model
    also exposes ``evaluate_batch`` the batched vectorized path is used.
    """

    def __init__(self, model: EMSTDPNetwork, train_data: Dataset,
                 test_data: Dataset, config: Optional[IOLConfig] = None):
        self.model = model
        self.config = config if config is not None else IOLConfig()
        self.train_data = train_data
        self.test_data = test_data
        self.rng = np.random.default_rng(self.config.seed)
        self.replay = ReplayStore(rng=self.rng)

    # -- helpers ---------------------------------------------------------

    def _features_of(self, dataset: Dataset, classes: Sequence[int],
                     n: Optional[int] = None):
        sub = dataset.subset(classes)
        xs, ys = sub.flat(), sub.labels
        if n is not None and n < len(xs):
            idx = self.rng.choice(len(xs), size=n, replace=False)
            xs, ys = xs[idx], ys[idx]
        return xs, ys

    def _eval_observed(self, observed: Sequence[int]) -> float:
        xs, ys = self._features_of(self.test_data, observed)
        evaluate = getattr(self.model, "evaluate_batch", self.model.evaluate)
        return evaluate(xs, ys)

    # -- protocol ----------------------------------------------------------

    def run(self, baseline_accuracy: Optional[float] = None) -> IOLResult:
        cfg = self.config
        n_classes = self.model.n_classes
        class_order = list(self.rng.permutation(n_classes))
        observed = class_order[:cfg.initial_classes]

        # Pretraining phase on the initial classes (not part of the curves).
        self.model.set_class_mask(observed)
        xs, ys = self._features_of(self.train_data, observed)
        for _ in range(2):
            self.model.train_stream(xs, ys)
        for x, y in zip(xs, ys):
            self.replay.add(x, int(y))

        records: List[RoundRecord] = []
        round_index = 0
        for inc in range(cfg.n_increments):
            start = cfg.initial_classes + inc * cfg.classes_per_increment
            new_classes = class_order[start:start + cfg.classes_per_increment]
            if not new_classes:
                break
            new_xs, new_ys = self._features_of(self.train_data, new_classes)
            chunks = max(len(new_xs) // cfg.rounds_per_increment, 1)
            observed = observed + list(new_classes)
            for rnd in range(cfg.rounds_per_increment):
                lo, hi = rnd * chunks, (rnd + 1) * chunks
                cx, cy = new_xs[lo:hi], new_ys[lo:hi]
                # step 1: learn new classes (old classifier neurons off,
                # reduced lr: the cross-distillation approximation)
                self.model.set_class_mask(new_classes)
                self.model.train_stream(cx, cy, lr_scale=cfg.step1_lr_scale)
                self.model.set_class_mask(observed)
                acc1 = self._eval_observed(observed)
                # step 2: retrain on new chunk + equal-size replay of old
                # classes (the store mixes old and fresh observations)
                ox, oy = self.replay.sample(min(len(cx), cfg.replay_per_round))
                if len(ox):
                    mix_x = np.concatenate([cx, ox])
                    mix_y = np.concatenate([cy, oy])
                    order = self.rng.permutation(len(mix_x))
                    mix_x, mix_y = mix_x[order], mix_y[order]
                else:  # pragma: no cover - replay store starts non-empty
                    mix_x, mix_y = cx, cy
                self.model.train_stream(mix_x, mix_y)
                acc2 = self._eval_observed(observed)
                for x, y in zip(cx, cy):
                    self.replay.add(x, int(y))
                records.append(RoundRecord(
                    round_index=round_index, increment=inc,
                    observed_classes=list(observed),
                    acc_after_step1=acc1, acc_after_step2=acc2,
                    new_classes=list(new_classes) if rnd == 0 else []))
                round_index += 1
        self.model.clear_class_mask()
        return IOLResult(records, class_order,
                         baseline_accuracy=baseline_accuracy)


def forgetting_dip(result: IOLResult) -> float:
    """Mean accuracy drop at class-introduction rounds (Fig. 4's dips)."""
    drops = []
    prev = None
    for rec in result.records:
        if rec.new_classes and prev is not None:
            drops.append(prev - rec.acc_after_step1)
        prev = rec.acc_after_step2
    return float(np.mean(drops)) if drops else 0.0


def recovery(result: IOLResult) -> float:
    """Mean within-increment recovery from first to last round (step 2)."""
    gains = []
    by_inc: Dict[int, List[RoundRecord]] = {}
    for rec in result.records:
        by_inc.setdefault(rec.increment, []).append(rec)
    for recs in by_inc.values():
        gains.append(recs[-1].acc_after_step2 - recs[0].acc_after_step1)
    return float(np.mean(gains)) if gains else 0.0
