"""Incremental online learning protocol (Section IV-B, Fig. 4)."""

from .protocol import (IOLConfig, IOLResult, IncrementalOnlineLearner,
                       RoundRecord, forgetting_dip, recovery)
from .replay import ReplayStore

__all__ = ["IOLConfig", "IOLResult", "IncrementalOnlineLearner",
           "ReplayStore", "RoundRecord", "forgetting_dip", "recovery"]
