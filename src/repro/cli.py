"""``python -m repro`` — run, list, show, compare, and serve experiments.

Subcommands::

    run <scenario> [--tiny] [--seeds N] [--seed-base B] [--resume [RUN_ID]]
        Execute a scenario's spec over N seeds (process-pool fan-out) and
        print its results table.  ``--resume`` without an id picks the
        newest unfinished run of the scenario; finished seeds are skipped.
    list
        Table of every run in the store (status, seeds done, version),
        most recent first.
    show <run_id>
        The per-seed results table of one run (id prefixes work).
    compare <run_id> [<run_id> ...]
        Mean numeric metrics of several runs side by side.
    serve <checkpoint> [--port P] [--max-batch N] [--max-wait-ms F]
        Micro-batching JSON inference endpoint over a checkpoint stem, a
        directory of checkpoints, or a run id (serves every checkpoint of
        that run).  Routes: POST /predict, GET /healthz, GET /metrics.

All table output renders through :mod:`repro.analysis.reporting`, the same
dependency-free formatter the benchmarks use.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from . import __version__
from .analysis.reporting import format_table
from .experiments import Runner, RunStore, get_scenario
from .experiments.scenarios import SCENARIOS
from .experiments.store import RunInfo

EPILOG = """examples:
  python -m repro run offline_accuracy --tiny --seeds 2
  python -m repro list
  python -m repro show <run_id>
  python -m repro serve <run_id>                 # serve a run's checkpoints
  python -m repro serve ckpt/model --port 8100   # serve one checkpoint stem
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="EMSTDP experiment orchestration and serving "
                    f"(scenarios: {', '.join(sorted(SCENARIOS))})",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a scenario over a seed fan-out")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("--tiny", action="store_true",
                     help="CI-sized variant of the spec (<30 s)")
    run.add_argument("--seeds", type=int, default=None, metavar="N",
                     help="number of independent seeds (default: the "
                          "spec's own seed list)")
    run.add_argument("--seed-base", type=int, default=0, metavar="B",
                     help="first seed of the fan-out (default 0)")
    run.add_argument("--epochs", type=int, default=None,
                     help="override the spec's training epochs")
    run.add_argument("--workers", type=int, default=None, metavar="W",
                     help="process-pool width (1 = run inline)")
    run.add_argument("--out", default="runs",
                     help="run-store root directory (default: runs/)")
    run.add_argument("--resume", nargs="?", const="latest", default=None,
                     metavar="RUN_ID",
                     help="resume a killed run instead of starting a new "
                          "one (no id = newest unfinished run of this "
                          "scenario); finished seeds are not re-run")

    lst = sub.add_parser("list", help="list all runs in the store")
    lst.add_argument("--out", default="runs")
    lst.add_argument("--experiment", default=None,
                     help="only runs of this scenario")

    show = sub.add_parser("show", help="render one run's results table")
    show.add_argument("run_id", help="run id or unique prefix")
    show.add_argument("--out", default="runs")

    cmp_ = sub.add_parser("compare",
                          help="mean metrics of several runs side by side")
    cmp_.add_argument("run_ids", nargs="+", metavar="run_id")
    cmp_.add_argument("--out", default="runs")

    serve = sub.add_parser(
        "serve", help="micro-batching JSON inference endpoint over "
                      "checkpointed models")
    serve.add_argument("checkpoint",
                       help="checkpoint stem, directory of checkpoints, or "
                            "run id (serves every checkpoint of the run)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100,
                       help="listen port (0 = ephemeral; default 8100)")
    serve.add_argument("--max-batch", type=int, default=32, metavar="N",
                       help="flush a micro-batch at this size (default 32)")
    serve.add_argument("--max-wait-ms", type=float, default=5.0, metavar="F",
                       help="flush at the latest this long after the first "
                            "queued request (default 5 ms)")
    serve.add_argument("--cache-size", type=int, default=1024, metavar="N",
                       help="LRU prediction-cache capacity (0 disables)")
    serve.add_argument("--workers", type=int, default=1, metavar="W",
                       help="batch-execution worker threads (default 1)")
    serve.add_argument("--out", default="runs",
                       help="run-store root used to resolve run ids")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------

def _cmd_run(args) -> int:
    scenario = get_scenario(args.scenario)
    spec = scenario.build_spec(tiny=args.tiny)
    if args.resume is not None:
        if args.resume != "latest":
            run = RunStore(args.out).find(args.resume)
            if run.experiment != args.scenario:
                print(f"error: run {run.run_id} is a {run.experiment} run, "
                      f"not {args.scenario}", file=sys.stderr)
                return 2
        if args.tiny or args.seeds is not None or args.epochs is not None \
                or args.seed_base:
            print("note: --resume takes the spec from the run's manifest; "
                  "--tiny/--seeds/--seed-base/--epochs are ignored",
                  file=sys.stderr)
    if args.seeds is not None:
        spec = spec.replace(
            seeds=tuple(range(args.seed_base, args.seed_base + args.seeds)))
    if args.epochs is not None:
        spec = spec.replace(epochs=args.epochs)
    runner = Runner(out_root=args.out, max_workers=args.workers)
    result = runner.run(spec, resume=args.resume, progress=print)
    print()
    print(result.summary())
    print(f"\nrun directory: {result.run_dir}")
    return 0 if result.status == "complete" else 1


# ---------------------------------------------------------------------------
# list
# ---------------------------------------------------------------------------

def _cmd_list(args) -> int:
    store = RunStore(args.out)
    runs = store.list_runs(args.experiment)
    if not runs:
        print(f"no runs under {store.root}/ "
              f"(start one with: python -m repro run <scenario>)")
        return 0
    # Run ids start with a YYYYmmdd-HHMMSS stamp, so lexicographic order is
    # chronological; sorted() is stable, so same-second runs keep the
    # store's (experiment, directory) order.
    runs = sorted(runs, key=lambda run: run.run_id, reverse=True)
    rows = []
    for run in runs:
        total = len(run.manifest.get("seeds", []))
        done = len(store.done_seeds(run))
        rows.append([run.experiment, run.run_id, run.status,
                     f"{done}/{total}",
                     run.manifest.get("repro_version", "?")])
    print(format_table(
        ["experiment", "run_id", "status", "seeds", "version"], rows))
    return 0


# ---------------------------------------------------------------------------
# show
# ---------------------------------------------------------------------------

def _cmd_show(args) -> int:
    store = RunStore(args.out)
    run = store.find(args.run_id)
    records = [r for r in store.records(run) if r.get("status") == "ok"]
    scenario = get_scenario(run.experiment)
    headers, rows = scenario.summarize(
        sorted(records, key=lambda r: r["seed"]))
    print(format_table(headers, rows,
                       title=f"{run.experiment} · run {run.run_id} "
                             f"[{run.status}] · repro "
                             f"{run.manifest.get('repro_version', '?')}"))
    means = _mean_metrics(records)
    if means:
        print()
        print(format_table(["metric", "mean"],
                           [[k, v] for k, v in sorted(means.items())],
                           title=f"means over {len(records)} seed(s)"))
    # A seed that errored and later succeeded on --resume has both an
    # error and an ok line (records.jsonl is append-only); only seeds
    # with no ok record are still failed.
    ok_seeds = {r["seed"] for r in records}
    errors = [r for r in store.records(run)
              if r.get("status") != "ok" and r["seed"] not in ok_seeds]
    if errors:
        print(f"\n{len(errors)} seed(s) failed: "
              f"{sorted(r['seed'] for r in errors)} "
              f"(resume with: python -m repro run {run.experiment} "
              f"--resume {run.run_id})")
    return 0


# ---------------------------------------------------------------------------
# compare
# ---------------------------------------------------------------------------

def _cmd_compare(args) -> int:
    store = RunStore(args.out)
    runs = [store.find(rid) for rid in args.run_ids]
    means = []
    for run in runs:
        ok = [r for r in store.records(run) if r.get("status") == "ok"]
        means.append(_mean_metrics(ok))
    columns = sorted(set().union(*means)) if means else []
    rows = []
    for run, m in zip(runs, means):
        rows.append([f"{run.experiment}/{run.run_id}"] +
                    [m.get(c, "") for c in columns])
    print(format_table(["run"] + columns, rows,
                       title="mean metrics per run"))
    return 0


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------

def _cmd_serve(args) -> int:
    from .persist import CheckpointError
    from .serve import InferenceHTTPServer, InferenceService, ModelRegistry

    registry = ModelRegistry()
    try:
        entries = registry.load_source(args.checkpoint, store_root=args.out)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = InferenceService(
        registry, max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size, workers=args.workers)
    server = InferenceHTTPServer(service, host=args.host, port=args.port)
    print(format_table(
        ["name", "class", "dims", "energy (mJ/req)"],
        [[e.name, e.model_class, "x".join(map(str, e.dims)),
          round(e.energy_mj_per_request, 3)] for e in entries],
        title=f"serving {len(entries)} model(s) at {server.url}"))
    default = registry.resolve()
    print(f"\ndefault model: {default.name} ({default.version})")
    print(f"  curl -X POST {server.url}/predict "
          "-d '{\"input\": [...], \"model\": \"<name>\"}'")
    print(f"  curl {server.url}/healthz\n  curl {server.url}/metrics")
    print("Ctrl-C to stop")
    try:
        server.serve_until_interrupt()
    finally:
        service.shutdown()
        snap = service.metrics()
        print(f"\nserved {snap['requests']} request(s), "
              f"cache hit rate {snap['cache']['hit_rate']:.2f}")
    return 0


def _mean_metrics(records: List[dict]) -> Dict[str, float]:
    """Mean of every numeric metric leaf over the given records."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for rec in records:
        for key, value in _flatten(rec.get("metrics", {})).items():
            sums[key] = sums.get(key, 0.0) + value
            counts[key] = counts.get(key, 0) + 1
    return {k: sums[k] / counts[k] for k in sums}


def _flatten(metrics: dict, prefix: str = "") -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in metrics.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, name + "."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[name] = float(value)
    return out


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
