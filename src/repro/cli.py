"""``python -m repro`` — run, list, show, compare, sweep, and serve.

Subcommands::

    run <scenario> [--tiny] [--seeds N] [--seed-base B] [--resume [RUN_ID]]
        Execute a scenario's spec over N seeds (work-queue worker fleet,
        ``REPRO_MAX_WORKERS`` overrides the width) and print its results
        table.  ``--resume`` without an id picks the newest unfinished
        run of the scenario; finished seeds are skipped.
    list
        Table of every run in the store (status, seeds done, version),
        most recent first.
    show <run_id>
        The per-seed results table of one run (id prefixes work).
    compare <run_id> [<run_id> ...]
        Mean numeric metrics of several runs side by side.
    sweep run [<sweep>] [--tiny] [--axis F=V1,V2 ...] [--resume [SWEEP_ID]]
        Expand a sweep (a built-in family like ``t_sweep`` /
        ``noise_robustness``, or any scenario given ``--axis`` grids) and
        interleave the full point x seed product across one worker
        fleet; mid-sweep kills (even SIGKILLed workers) resume at both
        the point and the seed level.
    sweep show <sweep_id> [--strict]
        Cross-point table with a best-point row, plus per-axis marginals.
        Failed points render as FAILED; ``--strict`` exits 1 on any.
    sweep compare <sweep_id> [<sweep_id> ...] [--strict]
        Best points of several sweeps side by side.
    sweep pareto <sweep_id> [--axis METRIC[:max|min] ...]
        Non-dominated front over the sweep's complete points (default
        axes: accuracy max, energy min, latency/duration min), with
        per-axis dominance counts.
    sweep list
        Table of every sweep in the store, most recent first.
    serve <checkpoint> [--port P] [--max-batch N] [--max-wait-ms F]
        Micro-batching JSON inference endpoint over a checkpoint stem, a
        directory of checkpoints, or a run id (serves every checkpoint of
        that run).  Routes: POST /predict, GET /healthz, GET /metrics.
        SIGTERM/SIGINT drain the micro-batchers before exiting.
    cluster <checkpoint> --workers N [--port P] [--max-inflight M]
        Supervised multi-process serving tier: a front-end router over N
        self-loading model-worker processes, with heartbeat supervision,
        exponential-backoff restarts, bounded-queue admission control
        (503 + Retry-After), quorum /healthz, aggregated /metrics, and
        POST /admin/swap for rolling hot-swap.
    trace summary <run_id|sweep_id|path>
        Aggregate a run's trace.jsonl: per-span-name totals, merged
        per-kernel timing across worker processes, top-N slowest spans.
    trace show <run_id|sweep_id|path>
        The full span tree of a trace, with events, durations and pids.
    check [paths] [--rule REPNNN] [--json] [--baseline FILE]
        Repo-native static analyzer (``repro.checks``): determinism,
        kernel boundaries, lock discipline, wire protocol, metric
        naming.  Exit 1 on any non-baselined finding.

All table output renders through :mod:`repro.analysis.reporting`, the same
dependency-free formatter the benchmarks use.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from . import __version__
from .analysis.aggregate import (axis_tables, best_point, mean_metrics,
                                 resolve_objective, sweep_table)
from .analysis.reporting import format_table
from .experiments import Runner, RunStore, get_scenario
from .experiments.scenarios import SCENARIOS

EPILOG = """examples:
  python -m repro run offline_accuracy --tiny --seeds 2
  python -m repro list
  python -m repro show <run_id>
  python -m repro sweep run t_sweep --tiny       # 2x2 CI-sized grid
  python -m repro sweep run noise_robustness     # corruption x dataset
  python -m repro sweep run offline_accuracy --axis epochs=1,2
  python -m repro sweep show <sweep_id>
  python -m repro sweep pareto <sweep_id>        # accuracy/energy/latency front
  python -m repro sweep pareto <sweep_id> --axis test_acc:max --axis duration_s:min
  python -m repro serve <run_id>                 # serve a run's checkpoints
  python -m repro serve ckpt/model --port 8100   # serve one checkpoint stem
  python -m repro cluster ckpt/model --workers 4 # supervised worker pool
  python -m repro trace summary <run_id>         # span + kernel timing
  python -m repro trace show <run_id>            # full span tree
  python -m repro check                          # lint src benchmarks examples
  python -m repro check src --rule REP003 --json # one rule, CI artifact form
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="EMSTDP experiment orchestration and serving "
                    f"(scenarios: {', '.join(sorted(SCENARIOS))})",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a scenario over a seed fan-out")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("--tiny", action="store_true",
                     help="CI-sized variant of the spec (<30 s)")
    run.add_argument("--seeds", type=int, default=None, metavar="N",
                     help="number of independent seeds (default: the "
                          "spec's own seed list)")
    run.add_argument("--seed-base", type=int, default=0, metavar="B",
                     help="first seed of the fan-out (default 0)")
    run.add_argument("--epochs", type=int, default=None,
                     help="override the spec's training epochs")
    run.add_argument("--workers", type=int, default=None, metavar="W",
                     help="process-pool width (1 = run inline)")
    run.add_argument("--out", default="runs",
                     help="run-store root directory (default: runs/)")
    run.add_argument("--resume", nargs="?", const="latest", default=None,
                     metavar="RUN_ID",
                     help="resume a killed run instead of starting a new "
                          "one (no id = newest unfinished run of this "
                          "scenario); finished seeds are not re-run")

    lst = sub.add_parser("list", help="list all runs in the store")
    lst.add_argument("--out", default="runs")
    lst.add_argument("--experiment", default=None,
                     help="only runs of this scenario")

    show = sub.add_parser("show", help="render one run's results table")
    show.add_argument("run_id", help="run id or unique prefix")
    show.add_argument("--out", default="runs")

    cmp_ = sub.add_parser("compare",
                          help="mean metrics of several runs side by side")
    cmp_.add_argument("run_ids", nargs="+", metavar="run_id")
    cmp_.add_argument("--out", default="runs")

    sweep = sub.add_parser(
        "sweep", help="run and inspect multi-point parameter sweeps")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    srun = sweep_sub.add_parser(
        "run", help="expand a sweep and run every point as a child run")
    srun.add_argument("sweep", nargs="?", default=None,
                      help="built-in sweep family (default: t_sweep) or "
                           "any scenario name combined with --axis; with "
                           "--resume it only filters which 'latest' sweep "
                           "to pick")
    srun.add_argument("--tiny", action="store_true",
                      help="CI-sized 2x2 grid variant (<60 s)")
    srun.add_argument("--axis", action="append", default=[],
                      metavar="FIELD=V1,V2",
                      help="add or override one grid axis; FIELD is a spec "
                           "field (phase_length, dataset, epochs, ...) or "
                           "a params.<key> path; repeatable")
    srun.add_argument("--seeds", type=int, default=None, metavar="N",
                      help="seeds per point (default: the base spec's)")
    srun.add_argument("--seed-base", type=int, default=0, metavar="B")
    srun.add_argument("--workers", type=int, default=None, metavar="W",
                      help="worker-fleet width shared by all points' "
                           "seeds (1 = inline; default: "
                           "REPRO_MAX_WORKERS or the CPU count)")
    srun.add_argument("--out", default="runs")
    srun.add_argument("--resume", nargs="?", const="latest", default=None,
                      metavar="SWEEP_ID",
                      help="resume a killed sweep (no id = newest "
                           "unfinished); finished points and finished "
                           "seeds of the interrupted point are skipped")

    sshow = sweep_sub.add_parser(
        "show", help="cross-point table with best-point row + marginals")
    sshow.add_argument("sweep_id", help="sweep id or unique prefix")
    sshow.add_argument("--out", default="runs")
    sshow.add_argument("--strict", action="store_true",
                       help="exit 1 when the sweep has any failed point")

    scmp = sweep_sub.add_parser(
        "compare", help="best points of several sweeps side by side")
    scmp.add_argument("sweep_ids", nargs="+", metavar="sweep_id")
    scmp.add_argument("--out", default="runs")
    scmp.add_argument("--strict", action="store_true",
                      help="exit 1 when any sweep has a failed point")

    spareto = sweep_sub.add_parser(
        "pareto", help="non-dominated accuracy/energy/latency front over "
                       "a sweep's complete points")
    spareto.add_argument("sweep_id", help="sweep id or unique prefix")
    spareto.add_argument("--axis", action="append", default=[],
                         metavar="METRIC[:max|min]", dest="axes",
                         help="objective axis (repeatable; default: the "
                              "accuracy-like objective max, first "
                              "energy-like metric min, first latency-like "
                              "metric or duration_s min)")
    spareto.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the full front report as JSON")
    spareto.add_argument("--out", default="runs")

    slst = sweep_sub.add_parser("list", help="list all sweeps in the store")
    slst.add_argument("--out", default="runs")

    serve = sub.add_parser(
        "serve", help="micro-batching JSON inference endpoint over "
                      "checkpointed models")
    serve.add_argument("checkpoint",
                       help="checkpoint stem, directory of checkpoints, or "
                            "run id (serves every checkpoint of the run)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100,
                       help="listen port (0 = ephemeral; default 8100)")
    serve.add_argument("--max-batch", type=int, default=32, metavar="N",
                       help="flush a micro-batch at this size (default 32)")
    serve.add_argument("--max-wait-ms", type=float, default=5.0, metavar="F",
                       help="flush at the latest this long after the first "
                            "queued request (default 5 ms)")
    serve.add_argument("--cache-size", type=int, default=1024, metavar="N",
                       help="LRU prediction-cache capacity (0 disables)")
    serve.add_argument("--workers", type=int, default=1, metavar="W",
                       help="batch-execution worker threads (default 1)")
    serve.add_argument("--out", default="runs",
                       help="run-store root used to resolve run ids")

    cluster = sub.add_parser(
        "cluster", help="supervised multi-process serving tier (front-end "
                        "router + N model-worker processes)")
    cluster.add_argument("checkpoint",
                         help="checkpoint stem, directory of checkpoints, "
                              "or run id — every worker self-loads it")
    cluster.add_argument("--workers", type=int, default=None, metavar="N",
                         help="model-worker processes (default: "
                              "REPRO_MAX_WORKERS, or up to 2)")
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=8100,
                         help="front-end listen port (0 = ephemeral; "
                              "default 8100)")
    cluster.add_argument("--max-batch", type=int, default=16, metavar="N",
                         help="per-worker micro-batch flush size "
                              "(default 16)")
    cluster.add_argument("--max-wait-ms", type=float, default=5.0,
                         metavar="F",
                         help="per-worker micro-batch deadline (default "
                              "5 ms)")
    cluster.add_argument("--cache-size", type=int, default=1024, metavar="N",
                         help="per-worker LRU prediction-cache capacity")
    cluster.add_argument("--max-inflight", type=int, default=32, metavar="M",
                         help="admission control: in-flight requests one "
                              "worker may hold before the front end "
                              "answers 503 (default 32)")
    cluster.add_argument("--quorum", type=int, default=None, metavar="Q",
                         help="live workers needed for /healthz to report "
                              "ok (default: majority)")
    cluster.add_argument("--heartbeat-timeout-s", type=float, default=5.0,
                         metavar="T",
                         help="heartbeat silence that marks a worker "
                              "wedged (default 5 s)")
    cluster.add_argument("--backoff-base-s", type=float, default=0.5,
                         metavar="B",
                         help="restart backoff base; doubles per "
                              "consecutive failure (default 0.5 s)")
    cluster.add_argument("--out", default="runs",
                         help="run-store root used to resolve run ids")

    check = sub.add_parser(
        "check", help="repo-native static analyzer (determinism, locks, "
                      "kernel boundary, wire protocol, metric naming)")
    check.add_argument("paths", nargs="*", metavar="path",
                       help="files or directories to analyze (default: "
                            "src benchmarks examples under the repo root)")
    check.add_argument("--rule", action="append", default=[],
                       metavar="REPNNN", dest="rules",
                       help="run only this rule (repeatable; also the "
                            "only way to run hidden advisory rules like "
                            "REP000)")
    check.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the full result as one JSON document "
                            "(the CI artifact format)")
    check.add_argument("--baseline", default=None, metavar="FILE",
                       help="baseline file of grandfathered findings "
                            "(default: .repro-checks-baseline.json at "
                            "the repo root)")
    check.add_argument("--write-baseline", action="store_true",
                       help="re-write the baseline from the current "
                            "findings instead of failing on them")
    check.add_argument("--verbose", action="store_true",
                       help="also list baselined findings in the report")
    check.add_argument("--list-rules", action="store_true",
                       help="describe every registered rule and exit")

    trace = sub.add_parser(
        "trace", help="inspect a run's trace.jsonl (spans, kernels)")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    tsum = trace_sub.add_parser(
        "summary", help="per-span aggregates + merged kernel timing + "
                        "top-N slowest spans")
    tsum.add_argument("target",
                      help="run id, sweep id, run directory, or trace file")
    tsum.add_argument("--top", type=int, default=10, metavar="N",
                      help="slowest individual spans to list (default 10)")
    tsum.add_argument("--out", default="runs")
    tshow = trace_sub.add_parser(
        "show", help="render the full span tree with events")
    tshow.add_argument("target",
                       help="run id, sweep id, run directory, or trace file")
    tshow.add_argument("--out", default="runs")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "cluster":
            return _cmd_cluster(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------

def _cmd_run(args) -> int:
    scenario = get_scenario(args.scenario)
    spec = scenario.build_spec(tiny=args.tiny)
    if args.resume is not None:
        if args.resume != "latest":
            run = RunStore(args.out).find(args.resume)
            if run.experiment != args.scenario:
                print(f"error: run {run.run_id} is a {run.experiment} run, "
                      f"not {args.scenario}", file=sys.stderr)
                return 2
        if args.tiny or args.seeds is not None or args.epochs is not None \
                or args.seed_base:
            print("note: --resume takes the spec from the run's manifest; "
                  "--tiny/--seeds/--seed-base/--epochs are ignored",
                  file=sys.stderr)
    if args.seeds is not None or args.seed_base:
        n_seeds = args.seeds if args.seeds is not None else len(spec.seeds)
        spec = spec.replace(
            seeds=tuple(range(args.seed_base, args.seed_base + n_seeds)))
    if args.epochs is not None:
        spec = spec.replace(epochs=args.epochs)
    runner = Runner(out_root=args.out, max_workers=args.workers)
    result = runner.run(spec, resume=args.resume, progress=print)
    print()
    print(result.summary())
    print(f"\nrun directory: {result.run_dir}")
    return 0 if result.status == "complete" else 1


# ---------------------------------------------------------------------------
# list
# ---------------------------------------------------------------------------

def _cmd_list(args) -> int:
    store = RunStore(args.out)
    runs = store.list_runs(args.experiment)
    if not runs:
        print(f"no runs under {store.root}/ "
              f"(start one with: python -m repro run <scenario>)")
        return 0
    # Run ids start with a YYYYmmdd-HHMMSS stamp, so lexicographic order is
    # chronological; sorted() is stable, so same-second runs keep the
    # store's (experiment, directory) order.
    runs = sorted(runs, key=lambda run: run.run_id, reverse=True)
    rows = []
    for run in runs:
        total = len(run.manifest.get("seeds", []))
        done = len(store.done_seeds(run))
        rows.append([run.experiment, run.run_id, run.status,
                     f"{done}/{total}",
                     run.manifest.get("repro_version", "?")])
    print(format_table(
        ["experiment", "run_id", "status", "seeds", "version"], rows))
    return 0


# ---------------------------------------------------------------------------
# show
# ---------------------------------------------------------------------------

def _cmd_show(args) -> int:
    store = RunStore(args.out)
    run = store.find(args.run_id)
    records = [r for r in store.records(run) if r.get("status") == "ok"]
    scenario = get_scenario(run.experiment)
    headers, rows = scenario.summarize(
        sorted(records, key=lambda r: r["seed"]))
    print(format_table(headers, rows,
                       title=f"{run.experiment} · run {run.run_id} "
                             f"[{run.status}] · repro "
                             f"{run.manifest.get('repro_version', '?')}"))
    means = mean_metrics(records)
    if means:
        print()
        print(format_table(["metric", "mean"],
                           [[k, v] for k, v in sorted(means.items())],
                           title=f"means over {len(records)} seed(s)"))
    # A seed that errored and later succeeded on --resume has both an
    # error and an ok line (records.jsonl is append-only); only seeds
    # with no ok record are still failed.
    ok_seeds = {r["seed"] for r in records}
    errors = [r for r in store.records(run)
              if r.get("status") != "ok" and r["seed"] not in ok_seeds]
    if errors:
        print(f"\n{len(errors)} seed(s) failed: "
              f"{sorted(r['seed'] for r in errors)} "
              f"(resume with: python -m repro run {run.experiment} "
              f"--resume {run.run_id})")
    return 0


# ---------------------------------------------------------------------------
# compare
# ---------------------------------------------------------------------------

def _cmd_compare(args) -> int:
    store = RunStore(args.out)
    runs = [store.find(rid) for rid in args.run_ids]
    means = []
    for run in runs:
        ok = [r for r in store.records(run) if r.get("status") == "ok"]
        means.append(mean_metrics(ok))
    columns = sorted(set().union(*means)) if means else []
    rows = []
    for run, m in zip(runs, means):
        rows.append([f"{run.experiment}/{run.run_id}"] +
                    [m.get(c, "") for c in columns])
    print(format_table(["run"] + columns, rows,
                       title="mean metrics per run"))
    return 0


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------

def _cmd_sweep(args) -> int:
    if args.sweep_command == "run":
        return _cmd_sweep_run(args)
    if args.sweep_command == "show":
        return _cmd_sweep_show(args)
    if args.sweep_command == "compare":
        return _cmd_sweep_compare(args)
    if args.sweep_command == "pareto":
        return _cmd_sweep_pareto(args)
    if args.sweep_command == "list":
        return _cmd_sweep_list(args)
    raise AssertionError(f"unhandled sweep command {args.sweep_command!r}")


def _parse_axis_value(text: str) -> object:
    """One ``--axis`` value: JSON if it parses, bare string if not."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _split_axis_values(text: str) -> List[str]:
    """Split on top-level commas only, so JSON list values survive
    (``hidden=[16,8],[32,16]`` is two values, not four fragments)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def _parse_axes(axis_args: List[str]):
    from .sweeps import SweepAxis, coerce_axis_value

    axes = []
    for arg in axis_args:
        field, _, values = arg.partition("=")
        if not field or not values:
            raise ValueError(
                f"--axis wants FIELD=V1,V2,..., got {arg!r}")
        # Coerce each value to the spec field's declared type right here,
        # so `--axis phase_length=16,32` never reaches a spec as strings
        # and a typoed field name fails before any point runs.
        axes.append(SweepAxis(field, tuple(
            coerce_axis_value(field, _parse_axis_value(v))
            for v in _split_axis_values(values))))
    return axes


def _build_sweep_spec(args):
    """Resolve the ``sweep run`` target: built-in family or ad hoc axes."""
    from .sweeps import SWEEPS, SweepSpec, get_sweep

    name = args.sweep if args.sweep is not None else "t_sweep"
    extra = _parse_axes(args.axis)
    if name in SWEEPS:
        spec = get_sweep(name).build_sweep(tiny=args.tiny)
        if extra:
            overridden = {a.field for a in extra}
            spec = spec.replace(grid=tuple(
                a for a in spec.grid
                if a.field not in overridden) + tuple(extra))
    elif name in SCENARIOS:
        if not extra:
            raise ValueError(
                f"{name!r} is a scenario, not a sweep family; give "
                "it at least one --axis FIELD=V1,V2 to sweep over "
                f"(built-in sweeps: {sorted(SWEEPS)})")
        base = get_scenario(name).build_spec(tiny=args.tiny)
        spec = SweepSpec(name=name, base=base, grid=tuple(extra))
    else:
        raise KeyError(
            f"unknown sweep or scenario {name!r}; sweeps: "
            f"{sorted(SWEEPS)}, scenarios: {sorted(SCENARIOS)}")
    if args.seeds is not None or args.seed_base:
        n_seeds = (args.seeds if args.seeds is not None
                   else len(spec.base.seeds))
        spec = spec.replace(base=spec.base.replace(seeds=tuple(
            range(args.seed_base, args.seed_base + n_seeds))))
    return spec


def _cmd_sweep_run(args) -> int:
    from .sweeps import SweepRunner

    runner = SweepRunner(out_root=args.out, max_workers=args.workers)
    if args.resume is not None:
        # The spec comes from sweep.json; a positional name (if any) only
        # narrows which "latest" sweep gets picked.
        if args.tiny or args.axis or args.seeds is not None \
                or args.seed_base:
            print("note: --resume takes the sweep spec from sweep.json; "
                  "--tiny/--axis/--seeds/--seed-base are ignored",
                  file=sys.stderr)
        resume = args.resume
        if resume == "latest" and args.sweep is not None:
            resume = runner.store.latest(
                args.sweep, unfinished_only=True).sweep_id
        result = runner.run(resume=resume, progress=print)
    else:
        try:
            spec = _build_sweep_spec(args)
            # Expand eagerly: a bad axis field or value surfaces here as
            # a clean error instead of a traceback mid-run.
            n_points = len(spec.expand())
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"sweep {spec.name}: {n_points} point(s) x "
              f"{len(spec.base.seeds)} seed(s)")
        result = runner.run(spec, progress=print)
    print()
    print(_render_sweep(runner.store, runner.store.find(result.sweep_id)))
    print(f"\nsweep directory: {result.sweep_dir}")
    return 0 if result.status == "complete" else 1


def _render_sweep(store, sweep) -> str:
    """The cross-point table (with best row) plus per-axis marginals."""
    spec = sweep.spec()
    summaries = store.summaries(sweep)
    headers, rows = sweep_table(sweep.points(), summaries,
                                spec.axis_fields(), spec.objective,
                                spec.mode)
    parts = [format_table(
        headers, rows,
        title=f"sweep {spec.name} · {sweep.sweep_id} [{sweep.status}] · "
              f"scenario {spec.base.name}")]
    for field, (ax_headers, ax_rows) in axis_tables(
            spec.axis_fields(), list(summaries.values()),
            spec.objective, spec.mode).items():
        parts.append("")
        parts.append(format_table(ax_headers, ax_rows,
                                  title=f"marginal over {field}"))
    return "\n".join(parts)


def _failed_points(sweep) -> List[str]:
    return [p["point_id"] for p in sweep.points()
            if p.get("status") == "failed"]


def _cmd_sweep_show(args) -> int:
    from .sweeps import SweepStore

    store = SweepStore(args.out)
    sweep = store.find(args.sweep_id)
    print(_render_sweep(store, sweep))
    pending = [p["point_id"] for p in sweep.points()
               if p.get("status") != "complete"]
    if sweep.status != "complete" and pending:
        print(f"\n{len(pending)} point(s) unfinished: {pending} "
              f"(resume with: python -m repro sweep run --resume "
              f"{sweep.sweep_id})")
    failed = _failed_points(sweep)
    if failed:
        print(f"\n{len(failed)} point(s) FAILED: {failed} "
              "(excluded from best-point/marginals/pareto)")
        if args.strict:
            return 1
    return 0


def _cmd_sweep_compare(args) -> int:
    from .sweeps import SweepStore

    store = SweepStore(args.out)
    rows = []
    any_failed = False
    for sweep_id in args.sweep_ids:
        sweep = store.find(sweep_id)
        any_failed = any_failed or bool(_failed_points(sweep))
        spec = sweep.spec()
        summaries = list(store.summaries(sweep).values())
        done = sum(1 for s in summaries if s.get("status") == "complete")
        objective = resolve_objective(summaries, spec.objective)
        best = best_point(summaries, objective, spec.mode)
        rows.append([
            spec.name, sweep.sweep_id, sweep.status,
            f"{done}/{len(sweep.points())}", objective,
            best["point_id"] if best else "-",
            best["metrics"][objective] if best else "",
            best["overrides"] if best else "",
        ])
    print(format_table(
        ["sweep", "sweep_id", "status", "points", "objective",
         "best point", "best value", "best overrides"], rows,
        title="sweeps side by side"))
    return 1 if (args.strict and any_failed) else 0


def _cmd_sweep_pareto(args) -> int:
    from .analysis.pareto import (ParetoAxis, pareto_front, pareto_table,
                                  resolve_axes)
    from .sweeps import SweepStore

    store = SweepStore(args.out)
    sweep = store.find(args.sweep_id)
    summaries = list(store.summaries(sweep).values())
    axes = [ParetoAxis.parse(a) for a in args.axes] or None
    result = pareto_front(summaries, axes)
    if not result["points"]:
        print(f"error: sweep {sweep.sweep_id} has no complete points "
              "with the requested metrics "
              f"(axes: {[a['metric'] for a in result['axes']] or args.axes})",
              file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    axis_desc = ", ".join(f"{a['metric']}:{a['mode']}"
                          for a in result["axes"])
    headers, rows = pareto_table(result)
    print(format_table(
        headers, rows,
        title=f"pareto front · sweep {sweep.sweep_id} [{sweep.status}] · "
              f"{len(result['front'])}/{len(result['points'])} point(s) "
              f"on front · axes: {axis_desc}"))
    if result["skipped"]:
        skipped = [f"{s['point_id']} ({s['reason']})"
                   for s in result["skipped"]]
        print(f"\n{len(skipped)} point(s) excluded: {', '.join(skipped)}")
    return 0


def _cmd_sweep_list(args) -> int:
    from .sweeps import SweepStore

    store = SweepStore(args.out)
    sweeps = store.list_sweeps()
    if not sweeps:
        print(f"no sweeps under {store.root}/ "
              f"(start one with: python -m repro sweep run t_sweep --tiny)")
        return 0
    rows = []
    for sweep in sorted(sweeps, key=lambda s: s.sweep_id, reverse=True):
        points = sweep.points()
        done = sum(1 for p in points if p.get("status") == "complete")
        rows.append([sweep.name, sweep.sweep_id, sweep.status,
                     f"{done}/{len(points)}",
                     sweep.manifest.get("repro_version", "?")])
    print(format_table(
        ["sweep", "sweep_id", "status", "points", "version"], rows))
    return 0


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------

def _cmd_serve(args) -> int:
    from .persist import CheckpointError
    from .serve import InferenceHTTPServer, InferenceService, ModelRegistry

    registry = ModelRegistry()
    try:
        entries = registry.load_source(args.checkpoint, store_root=args.out)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = InferenceService(
        registry, max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size, workers=args.workers)
    server = InferenceHTTPServer(service, host=args.host, port=args.port)
    print(format_table(
        ["name", "class", "dims", "energy (mJ/req)"],
        [[e.name, e.model_class, "x".join(map(str, e.dims)),
          round(e.energy_mj_per_request, 3)] for e in entries],
        title=f"serving {len(entries)} model(s) at {server.url}"))
    default = registry.resolve()
    print(f"\ndefault model: {default.name} ({default.version})")
    print(f"  curl -X POST {server.url}/predict "
          "-d '{\"input\": [...], \"model\": \"<name>\"}'")
    print(f"  curl {server.url}/healthz\n  curl {server.url}/metrics")
    print("Ctrl-C (or SIGTERM) drains and stops")
    drained = False
    signum = None
    try:
        signum = server.serve_until_signal()
    finally:
        # Drain before exiting: in-flight micro-batches finish, and the
        # operator learns whether the drain completed (exit 0) or timed
        # out with requests still queued (exit 1).
        drained = service.shutdown(timeout=30.0)
        snap = service.metrics()
        print(f"\nreceived {_signal_name(signum)}: drained={drained}")
        print(f"served {snap['requests']} request(s), "
              f"cache hit rate {snap['cache']['hit_rate']:.2f}")
        if not drained:
            print("warning: shutdown timed out with requests still in "
                  "flight", file=sys.stderr)
    return 1 if not drained else 0


def _signal_name(signum) -> str:
    import signal as _signal
    try:
        return _signal.Signals(signum).name
    except (ValueError, TypeError):
        return str(signum)


# ---------------------------------------------------------------------------
# cluster
# ---------------------------------------------------------------------------

def _cmd_cluster(args) -> int:
    from .cluster import ClusterError, ClusterService, Supervisor, WorkerSpec
    from .exec import default_workers
    from .serve import InferenceHTTPServer

    if args.workers is None:
        args.workers = default_workers(cap=2)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    spec = WorkerSpec(
        source=args.checkpoint, store_root=args.out,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size)
    supervisor = Supervisor(
        spec, n_workers=args.workers, quorum=args.quorum,
        heartbeat_timeout_s=args.heartbeat_timeout_s,
        backoff_base_s=args.backoff_base_s)
    print(f"starting {args.workers} worker(s) on {args.checkpoint} ...")
    try:
        supervisor.start(wait=True)
    except ClusterError as exc:
        # Workers self-load; a bad checkpoint surfaces here as the first
        # worker's fatal error rather than as a parent-side double load.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = ClusterService(supervisor,
                             max_inflight_per_worker=args.max_inflight)
    server = InferenceHTTPServer(service, host=args.host, port=args.port)
    print(format_table(
        ["slot", "pid", "state"],
        [[w["slot"], w["pid"], w["state"]] for w in supervisor.describe()],
        title=f"cluster of {args.workers} worker(s) at {server.url} "
              f"(quorum {supervisor.quorum})"))
    print(f"\n  curl -X POST {server.url}/predict -d '{{\"input\": [...]}}'")
    print(f"  curl {server.url}/healthz\n  curl {server.url}/metrics")
    print(f"  curl -X POST {server.url}/admin/swap "
          "-d '{\"source\": \"<checkpoint>\"}'   # rolling hot-swap")
    print("Ctrl-C (or SIGTERM) drains every worker and stops")
    drained = False
    signum = None
    try:
        signum = server.serve_until_signal()
    finally:
        drained = service.shutdown(timeout=30.0)
        print(f"\nreceived {_signal_name(signum)}: drained={drained}")
        # Final metrics snapshot: front-end state only (the workers are
        # draining or gone), printed instead of discarded so the last
        # scrape's story survives the processes.
        final = service.final_snapshot()
        print(format_table(
            ["metric", "value"],
            [[k, v] for k, v in final.items()],
            title="final cluster snapshot"))
        if not drained:
            print("warning: drain timed out with requests still in flight",
                  file=sys.stderr)
    return 1 if not drained else 0


# ---------------------------------------------------------------------------
# check
# ---------------------------------------------------------------------------

def _cmd_check(args) -> int:
    from pathlib import Path

    from . import checks

    if args.list_rules:
        print(format_table(
            ["rule", "severity", "default", "title"],
            [[r.id, r.severity, "no (hidden)" if r.hidden else "yes",
              r.title] for r in checks.all_rules()],
            title="repro.checks rules "
                  "(suppress one line with '# repro: ignore[RULE]')"))
        return 0
    root = checks.find_repo_root(Path.cwd())
    paths = args.paths or [p for p in ("src", "benchmarks", "examples")
                           if (root / p).is_dir()]
    try:
        rules = checks.get_rules(args.rules or None)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / checks.BASELINE_NAME)
    try:
        entries = ([] if args.write_baseline
                   else checks.load_baseline(baseline_path))
        result = checks.run_checks(paths, rules=rules, baseline=entries,
                                   root=root)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        checks.save_baseline(baseline_path, result.findings)
        print(f"baseline: {len(result.findings)} finding(s) written to "
              f"{baseline_path}")
        return 0
    if args.as_json:
        print(checks.render_json(result))
    else:
        print(checks.render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------

def _cmd_trace(args) -> int:
    if args.trace_command == "summary":
        return _cmd_trace_summary(args)
    if args.trace_command == "show":
        return _cmd_trace_show(args)
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def _resolve_trace_path(target: str, out: str):
    """A trace file from a path, run directory, run id, or sweep id."""
    from pathlib import Path

    from .obs import TRACE_FILE_NAME

    path = Path(target)
    if path.is_file():
        return path
    if path.is_dir():
        return path / TRACE_FILE_NAME
    try:
        return RunStore(out).find(target).path / TRACE_FILE_NAME
    except KeyError:
        pass
    from .sweeps import SweepStore
    try:
        return SweepStore(out).find(target).path / TRACE_FILE_NAME
    except KeyError:
        pass
    raise KeyError(
        f"{target!r} is not a trace file, a run directory, a run id, or "
        f"a sweep id (store root: {out}/)")


def _load_trace(args):
    from . import obs

    path = _resolve_trace_path(args.target, args.out)
    records = obs.read_trace(path)
    if not records:
        print(f"error: no trace records in {path} "
              "(was the run executed with REPRO_OBS_TRACE=0?)",
              file=sys.stderr)
        return path, None
    return path, records


def _span_label(span: dict) -> str:
    attrs = span.get("attrs", {})
    keys = ("experiment", "run_id", "seed", "backend", "epoch", "dataset",
            "point_id", "worker", "status")
    detail = " ".join(f"{k}={attrs[k]}" for k in keys if k in attrs)
    return f"{span['name']}{' [' + detail + ']' if detail else ''}"


def _cmd_trace_show(args) -> int:
    from . import obs

    path, records = _load_trace(args)
    if records is None:
        return 2
    roots, children = obs.build_span_forest(records)
    events_by_parent: dict = {}
    for rec in records:
        if rec.get("kind") == "event":
            events_by_parent.setdefault(rec.get("parent_id"),
                                        []).append(rec)
    print(f"trace {path} · {len(records)} record(s)")

    def render(span: dict, depth: int) -> None:
        pad = "  " * depth
        status = "" if span.get("status") == "ok" else " !ERROR"
        print(f"{pad}{_span_label(span)}  {span.get('dur_ms', 0):.1f}ms "
              f"pid={span.get('pid')}{status}")
        for ev in sorted(events_by_parent.get(span["span_id"], []),
                         key=lambda e: e.get("ts", 0.0)):
            print(f"{pad}  * {ev['name']} {ev.get('attrs', {})}")
        for child in children.get(span["span_id"], []):
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    kernels = obs.summarize_kernels(records)
    if kernels:
        print()
        print(format_table(
            ["kernel", "calls", "timed", "mean_us", "est_total_ms"],
            [[k["name"], k["calls"], k["timed"], k["mean_us"],
              k["est_total_ms"]] for k in kernels],
            title="kernel timing (sampled, merged across processes)"))
    return 0


def _cmd_trace_summary(args) -> int:
    from . import obs

    path, records = _load_trace(args)
    if records is None:
        return 2
    spans = obs.summarize_spans(records)
    pids = sorted({r.get("pid") for r in records if r.get("pid")})
    print(f"trace {path} · {len(records)} record(s) · "
          f"{len(pids)} process(es): {pids}")
    if spans:
        print()
        print(format_table(
            ["span", "count", "errors", "total_ms", "mean_ms", "max_ms",
             "queue_ms"],
            [[s["name"], s["count"], s["errors"], s["total_ms"],
              s["mean_ms"], s["max_ms"],
              "-" if s.get("queue_wait_ms") is None
              else s["queue_wait_ms"]] for s in spans],
            title="per-span aggregates (queue_ms = mean enqueue->claim "
                  "wait)"))
    kernels = obs.summarize_kernels(records)
    if kernels:
        print()
        print(format_table(
            ["kernel", "calls", "timed", "mean_us", "est_total_ms"],
            [[k["name"], k["calls"], k["timed"], k["mean_us"],
              k["est_total_ms"]] for k in kernels],
            title="kernel timing (sampled, merged across processes)"))
    slowest = obs.slowest_spans(records, top=args.top)
    if slowest:
        print()
        print(format_table(
            ["span", "dur_ms", "pid", "status"],
            [[_span_label(s), s.get("dur_ms", 0), s.get("pid"),
              s.get("status")] for s in slowest],
            title=f"top {len(slowest)} slowest spans"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
