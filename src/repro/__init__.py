"""repro — reproduction of "In-Hardware Learning of Multilayer Spiking
Neural Networks on a Neuromorphic Processor" (DAC 2021).

Subpackages
-----------
``repro.core``
    The EMSTDP algorithm (full-precision reference implementation).
``repro.loihi``
    A Loihi-like core-based neuromorphic chip simulator: CUBA compartments,
    8-bit synapses, trace counters, a sum-of-products microcode learning
    engine, core mapping, and an energy model.
``repro.onchip``
    EMSTDP built on top of the chip simulator under hardware constraints.
``repro.models``
    Offline CNN substrate for pretraining the convolutional frontend and the
    topology spec parser.
``repro.data``
    Synthetic stand-ins for MNIST / Fashion-MNIST / CIFAR-10 / MSTAR.
``repro.incremental``
    The two-step incremental online learning protocol of Section IV-B.
``repro.baselines``
    Analytic CPU/GPU cost models and a true-backprop ANN reference.
``repro.analysis``
    Metrics, trade-off sweeps and table formatting for the benchmarks.
``repro.persist``
    Versioned checkpoint save/load (npz arrays + JSON manifest) for every
    trainable model.
``repro.experiments``
    Config-driven experiment orchestration: declarative specs, a seed
    fan-out runner, and a ``runs/`` store; drives ``python -m repro``.
``repro.sweeps``
    Sweep orchestration over the experiment runner: grid/random axes,
    resumable multi-point execution, a ``runs/sweeps/`` index; drives
    ``python -m repro sweep``.
``repro.serve``
    Micro-batching inference service: model registry with hot-swap,
    prediction cache, HTTP endpoint, telemetry, and a load-test harness;
    drives ``python -m repro serve``.
``repro.obs``
    Zero-dependency observability: labeled metrics, durable JSONL span
    traces next to run artifacts, sampled kernel profiling, and Prometheus
    text exposition; drives ``python -m repro trace``.
"""

try:  # installed package: single source of truth is the distribution metadata
    from importlib.metadata import version as _dist_version

    __version__ = _dist_version("emstdp-repro")
except Exception:  # running from a source tree (PYTHONPATH=src)
    __version__ = "1.0.0"

from . import (analysis, baselines, core, data, experiments, incremental,
               loihi, models, obs, onchip, persist, serve, sweeps)
from .seeding import as_rng

__all__ = ["analysis", "baselines", "core", "data", "experiments",
           "incremental", "loihi", "models", "obs", "onchip", "persist",
           "serve", "sweeps", "as_rng", "__version__"]
