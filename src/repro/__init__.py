"""repro — reproduction of "In-Hardware Learning of Multilayer Spiking
Neural Networks on a Neuromorphic Processor" (DAC 2021).

Subpackages
-----------
``repro.core``
    The EMSTDP algorithm (full-precision reference implementation).
``repro.loihi``
    A Loihi-like core-based neuromorphic chip simulator: CUBA compartments,
    8-bit synapses, trace counters, a sum-of-products microcode learning
    engine, core mapping, and an energy model.
``repro.onchip``
    EMSTDP built on top of the chip simulator under hardware constraints.
``repro.models``
    Offline CNN substrate for pretraining the convolutional frontend and the
    topology spec parser.
``repro.data``
    Synthetic stand-ins for MNIST / Fashion-MNIST / CIFAR-10 / MSTAR.
``repro.incremental``
    The two-step incremental online learning protocol of Section IV-B.
``repro.baselines``
    Analytic CPU/GPU cost models and a true-backprop ANN reference.
``repro.analysis``
    Metrics, trade-off sweeps and table formatting for the benchmarks.
"""

__version__ = "1.0.0"

from . import analysis, baselines, core, data, incremental, loihi, models, onchip

__all__ = ["analysis", "baselines", "core", "data", "incremental", "loihi",
           "models", "onchip", "__version__"]
